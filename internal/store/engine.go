package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// The segment engine: snapshot-free persistence. Mutations land in the
// in-memory memtable (memtable.go), journaled by the group-commit WAL
// exactly as before; when the memtable crosses Config.FlushThreshold
// bytes it is frozen and flushed to a sorted immutable segment file
// *outside* the six subsystem locks. Only the freeze-swap itself holds
// them, and it does O(queued frames) work — drain the pending batch into
// the retiring log, swap the memtable and writer pointers — never
// O(corpus). That removes the snapshot engine's stop-the-world stall,
// which grows with corpus size and was the dominant tail-latency cost.
//
// On-disk layout under Config.Dir:
//
//	MANIFEST        root pointer: live segment list + FlushedGen
//	seg-%06d.seg    immutable sorted segments, oldest number first
//	wal-%06d.log    per-generation logs; gens > FlushedGen are live
//
// Flush protocol (flushOnce):
//
//  1. create wal-(G+1) — two fsyncs — and sync wal-G's backlog
//     (presync), no locks held;
//  2. under all six locks: swap in a fresh memtable, rotate the
//     committer onto the new log (drain pending frames into wal-G and
//     fsync that residue — the chain invariant: a log is fully durable
//     before any frame can land in its successor), bump the live
//     generation to G+1;
//  3. no locks held: serialise the frozen window to seg-N (temp +
//     rename + dir fsync), install a manifest with FlushedGen=G and
//     seg-N appended, delete wal files with gen <= G.
//
// A crash between any two steps is safe: until the manifest lands, the
// frozen window's wal files survive and recovery replays them; after it
// lands, the segment owns those generations and the stale logs are swept.
// Segment numbers come from the manifest's NextSeg counter, so a crashed
// flush's orphan seg file is simply overwritten or deleted next open.
//
// Recovery (openSegment): read MANIFEST, load its segments oldest-first
// (tombstones before rows within each), sweep unreferenced seg/wal
// files, replay the wal generations above FlushedGen in order — they
// rebuild the memtable as they apply, so the next flush carries them —
// and append to the newest log. Replay work is bounded by the flush
// threshold, not the corpus. A torn tail on any log in the chain is the
// usual bounded crash loss and is truncated away — unless a *later*
// generation holds frames, which the chain invariant above makes proof
// that fully-synced bytes went missing: that is media corruption and
// refuses to open. A directory holding the legacy snapshot.gob/wal.gob
// layout (and no MANIFEST) is migrated in place: state loads through the
// legacy path once, is written out as segment 1, and the legacy files
// are removed.
//
// Compaction (compactOnce) runs on its own goroutine, concurrent with
// flushing, with no subsystem lock ever held: when the live segment
// count reaches Config.CompactSegments it merges the segments live at
// that moment oldest-first through a memtable accumulator, drops
// tombstones (the merged output becomes the oldest segment, so nothing
// remains underneath for them to kill) and superseded rows, then
// splices the output over the input prefix — segments flushed during
// the merge stay behind it untouched. Serving never notices; reads hit
// only in-memory state.
//
// Backpressure: writers that find the memtable at or above
// memHardMult × FlushThreshold after their commit park in throttleMem
// (store.go) until the next freeze-swap zeroes it. Sustained ingest
// degrades to flush bandwidth instead of growing an unbounded memtable
// whose ever-larger flushes stall the whole store.
type segEngine struct {
	s *Store

	// manMu guards man, the in-memory mirror of the installed MANIFEST.
	manMu sync.Mutex
	//tvdp:guardedby manMu
	man manifest

	// flushMu serialises flushOnce/compactOnce across the background
	// worker and forced flushes (Snapshot); s.gen is only written under
	// it after Open.
	flushMu sync.Mutex

	flushC chan struct{}
	stopC  chan struct{}
	doneC  chan struct{}

	// compacting gates the single in-flight background compaction; bg
	// tracks its goroutine so stopWorker can wait for it. Compaction runs
	// concurrently with flushes (it holds flushMu only to reserve its
	// output number and to install the result), so writers throttled at
	// the memtable cap never wait behind a full-corpus merge.
	compacting atomic.Bool
	bg         sync.WaitGroup

	flushes     atomic.Uint64
	compactions atomic.Uint64

	// errMu guards lastErr, the first flush/compaction failure; surfaced
	// by Snapshot and Close. Once set the engine fail-stops: flushOnce
	// and compactOnce refuse to run, because a flush that died after its
	// freeze-swap left the frozen window's only durable copy in retired
	// WAL generations — a later flush advancing FlushedGen past them
	// would delete acked data. Mutations keep landing in generations
	// recovery still replays (a failed rotation additionally leaves the
	// committer write-dead, failing them outright).
	errMu sync.Mutex
	//tvdp:guardedby errMu
	lastErr error
}

func (e *segEngine) manifestCopy() manifest {
	e.manMu.Lock()
	defer e.manMu.Unlock()
	return e.man.clone()
}

func (e *segEngine) setManifest(m manifest) {
	e.manMu.Lock()
	e.man = m
	e.manMu.Unlock()
}

func (e *segEngine) recordErr(err error) {
	if err == nil || errors.Is(err, ErrClosed) {
		return
	}
	e.errMu.Lock()
	if e.lastErr == nil {
		e.lastErr = err
	}
	e.errMu.Unlock()
}

func (e *segEngine) takeErr() error {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	return e.lastErr
}

// sick reports whether a background failure has been recorded. Writers
// parked at the memtable cap check it: once the engine is sick no
// future freeze-swap is guaranteed, so they run uncapped rather than
// strand on the condvar.
func (e *segEngine) sick() bool {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	return e.lastErr != nil
}

// kick nudges the background worker; drops the signal if one is already
// pending.
func (e *segEngine) kick() {
	select {
	case e.flushC <- struct{}{}:
	default:
	}
}

// stopWorker shuts the flush worker down, then waits for any in-flight
// background compaction (only the worker spawns those, so once it has
// exited no new one can start).
func (e *segEngine) stopWorker() {
	close(e.stopC)
	<-e.doneC
	e.bg.Wait()
}

func (e *segEngine) run() {
	defer close(e.doneC)
	for {
		select {
		case <-e.stopC:
			return
		case <-e.flushC:
			// flushOnce/compactOnce record their own failures (they are
			// also reachable via Snapshot, which must fail-stop the same
			// way); here only wake parked writers — the error may have
			// left the memtable over the hard cap with no flush coming,
			// and they should see the sick engine instead of sleeping
			// forever.
			if err := e.flushOnce(); err != nil {
				e.s.wakeThrottled()
				continue
			}
			e.manMu.Lock()
			n := len(e.man.Segments)
			e.manMu.Unlock()
			if n >= e.s.cfg.CompactSegments && e.compacting.CompareAndSwap(false, true) {
				e.bg.Add(1)
				go func() {
					defer e.bg.Done()
					defer e.compacting.Store(false)
					if err := e.compactOnce(); err != nil {
						e.s.wakeThrottled()
					}
				}()
			}
		}
	}
}

// flushOnce freezes the current memtable window and flushes it to a new
// segment. Steps and crash-safety are documented on the type; the only
// section under subsystem locks is the swap itself. Failures are
// recorded and the engine fail-stops (see errMu): once any flush has
// died the frozen-window data may survive only in retired WAL
// generations, and the one safe response is to never install a later
// manifest — refuse here, let WAL generations accumulate, and surface
// the error on Snapshot and Close.
func (e *segEngine) flushOnce() error {
	e.flushMu.Lock()
	defer e.flushMu.Unlock()
	if err := e.takeErr(); err != nil {
		return fmt.Errorf("store: flush disabled by earlier engine failure: %w", err)
	}
	err := e.flushLocked()
	e.recordErr(err)
	return err
}

// flushLocked is the flush body; callers hold flushMu.
//
//tvdp:requires flushMu
func (e *segEngine) flushLocked() error {
	s := e.s
	if s.closed.Load() {
		return ErrClosed
	}
	if s.memBytes.Load() == 0 {
		return nil
	}
	// Pre-create the next generation's log outside every lock: its two
	// fsyncs are the expensive part of rotation.
	newGen := s.gen + 1
	w, err := createWAL(s.cfg.Dir, walName(newGen), newGen, nil, s.cfg.WALSync)
	if err != nil {
		return err
	}
	// Sync the retiring log's backlog now, still outside every lock, so
	// the chain-invariant fsync inside rotateTo covers only the frames
	// that arrive between here and the swap.
	if err := s.com.presync(); err != nil {
		if cerr := w.close(); cerr != nil {
			return errors.Join(err, cerr)
		}
		return err
	}
	s.lockAll()
	if s.closed.Load() {
		s.unlockAll()
		if cerr := w.close(); cerr != nil {
			return errors.Join(ErrClosed, cerr)
		}
		return ErrClosed
	}
	frozen := s.mem
	frozen.nextID = s.nextID.Load()
	s.mem = newMemtable()
	s.memBytes.Store(0)
	frozenGen := s.gen
	old, rerr := s.com.rotateTo(w)
	if rerr == nil {
		s.gen = newGen
	}
	s.unlockAll()
	// The memtable is empty either way (the swap happened before the
	// rotation could fail); release writers parked at the hard cap.
	s.wakeThrottled()
	if rerr != nil {
		return rerr
	}
	// From here on no lock is held; serving proceeds while the frozen
	// window is serialised and installed. Close the retiring log now that
	// the locks are down. A close failure must NOT abort the flush: the
	// frozen rows already left the memtable, so the segment below is the
	// only path that ever makes them durable again — skipping it would let
	// a later flush advance FlushedGen past their log and delete it. The
	// retiring log is already fully synced (rotateTo), so the close adds
	// nothing to durability; finish the flush and surface the error after.
	closeErr := old.close()
	seg := frozen.toSegment(false)
	man := e.manifestCopy()
	prevFlushed := man.FlushedGen
	name := segName(man.NextSeg)
	nbytes, err := writeSegment(s.cfg.Dir, name, seg)
	if err != nil {
		return err
	}
	man.Segments = append(man.Segments, segmentRef{Name: name, Rows: seg.rows(), Bytes: nbytes})
	man.NextSeg++
	man.FlushedGen = frozenGen
	if err := writeManifest(s.cfg.Dir, man); err != nil {
		return err
	}
	e.setManifest(man)
	// The segment now owns generations prevFlushed+1..frozenGen; their
	// logs are garbage. Removal is an optimisation (open sweeps stale
	// gens anyway), so removal errors are not durability errors — but
	// surface them rather than hiding a sick disk.
	for g := prevFlushed + 1; g <= frozenGen; g++ {
		if err := os.Remove(filepath.Join(s.cfg.Dir, walName(g))); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("store: removing flushed WAL: %w", err)
		}
	}
	if err := fsyncDir(s.cfg.Dir); err != nil {
		return err
	}
	e.flushes.Add(1)
	if closeErr != nil {
		return fmt.Errorf("store: closing retiring WAL (flush installed): %w", closeErr)
	}
	return nil
}

// compactOnce merges the current live segment set into one, dropping
// tombstones and superseded rows. No subsystem lock is taken at any
// point, and flushMu is held only for the reserve and install phases —
// the merge itself (the expensive part, O(corpus)) runs with no lock,
// so flushes keep landing underneath and writers throttled at the
// memtable cap never wait behind it. Concurrent flushes only *append*
// segments, so the reserved input set stays the oldest prefix of the
// manifest; the install splices the merged output over exactly that
// prefix. Dropping the prefix's tombstones remains correct because the
// output becomes the oldest segment — there is nothing underneath for
// them to kill. Like flushOnce it records its failures and fail-stops
// once the engine is sick: a sick disk should get no more write traffic,
// and the recorded error must keep surfacing on Snapshot and Close.
func (e *segEngine) compactOnce() error {
	err := e.compact()
	e.recordErr(err)
	return err
}

func (e *segEngine) compact() error {
	s := e.s
	// Reserve: snapshot the input set and claim the output number so a
	// concurrent flush allocates behind it. The bump is in-memory only —
	// every later manifest write persists it, and if none happens before
	// a crash the unreferenced output file is swept at the next open.
	e.flushMu.Lock()
	if s.closed.Load() {
		e.flushMu.Unlock()
		return ErrClosed
	}
	if err := e.takeErr(); err != nil {
		e.flushMu.Unlock()
		return fmt.Errorf("store: compaction disabled by earlier engine failure: %w", err)
	}
	man := e.manifestCopy()
	if len(man.Segments) < 2 {
		e.flushMu.Unlock()
		return nil
	}
	inputs := append([]segmentRef(nil), man.Segments...)
	outNum := man.NextSeg
	man.NextSeg++
	e.setManifest(man)
	e.flushMu.Unlock()

	acc := newMemtable()
	for _, ref := range inputs {
		seg, err := readSegment(s.cfg.Dir, ref.Name)
		if err != nil {
			return err
		}
		acc.absorb(seg)
	}
	out := acc.toSegment(true)
	name := segName(outNum)
	nbytes, err := writeSegment(s.cfg.Dir, name, out)
	if err != nil {
		return err
	}

	// Install: splice the merged segment over the input prefix.
	e.flushMu.Lock()
	defer e.flushMu.Unlock()
	if s.closed.Load() {
		return ErrClosed
	}
	cur := e.manifestCopy()
	for i := range inputs {
		if i >= len(cur.Segments) || cur.Segments[i] != inputs[i] {
			// Another compaction (a direct test/tool call racing the
			// background one) already replaced the prefix. Abandon: the
			// corpus is intact, our output is redundant.
			if err := os.Remove(filepath.Join(s.cfg.Dir, name)); err != nil {
				return fmt.Errorf("store: removing abandoned compaction output: %w", err)
			}
			return nil
		}
	}
	newMan := manifest{
		Version:    manifestVersion,
		FlushedGen: cur.FlushedGen,
		NextSeg:    cur.NextSeg,
		Segments: append([]segmentRef{{Name: name, Rows: out.rows(), Bytes: nbytes}},
			cur.Segments[len(inputs):]...),
	}
	if err := writeManifest(s.cfg.Dir, newMan); err != nil {
		return err
	}
	e.setManifest(newMan)
	for _, ref := range inputs {
		if err := os.Remove(filepath.Join(s.cfg.Dir, ref.Name)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("store: removing compacted segment: %w", err)
		}
	}
	if err := fsyncDir(s.cfg.Dir); err != nil {
		return err
	}
	e.compactions.Add(1)
	return nil
}

// ---- Open / recovery ----

// openSegment opens or recovers a segment-engine directory: manifest +
// segments + WAL-tail replay, with in-place migration from the legacy
// single-snapshot layout. Runs single-threaded at Open.
func (s *Store) openSegment() error {
	dir := s.cfg.Dir
	// Temp files are in-progress writes that never became durable state.
	tmps, err := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if err != nil {
		return fmt.Errorf("store: scanning temp files: %w", err)
	}
	for _, p := range tmps {
		if err := os.Remove(p); err != nil {
			return fmt.Errorf("store: removing stale temp file: %w", err)
		}
	}
	man, err := readManifest(dir)
	if err != nil {
		return err
	}
	if man == nil {
		if _, serr := os.Stat(filepath.Join(dir, snapshotFile)); serr == nil {
			return s.migrateLegacy()
		}
		if _, serr := os.Stat(filepath.Join(dir, walFile)); serr == nil {
			return s.migrateLegacy()
		}
		// Fresh directory: install an empty manifest so every later open
		// takes the segment path, then start generation 1.
		fresh := manifest{Version: manifestVersion, FlushedGen: 0, NextSeg: 1}
		if err := writeManifest(dir, fresh); err != nil {
			return err
		}
		return s.startSegment(fresh, nil)
	}
	// A crash after a migration's manifest install can strand the legacy
	// files; the manifest owns everything now.
	for _, legacy := range []string{snapshotFile, walFile} {
		if err := os.Remove(filepath.Join(dir, legacy)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("store: removing superseded legacy file: %w", err)
		}
	}
	live := make(map[string]bool, len(man.Segments))
	for _, ref := range man.Segments {
		live[ref.Name] = true
		seg, err := readSegment(dir, ref.Name)
		if err != nil {
			return err
		}
		if err := s.loadSegment(seg); err != nil {
			return fmt.Errorf("store: loading segment %s: %w", ref.Name, err)
		}
	}
	// Sweep unreferenced segment files (crashed flush or compaction
	// output, superseded compaction inputs).
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("store: scanning segment dir: %w", err)
	}
	for _, ent := range entries {
		if isSegName(ent.Name()) && !live[ent.Name()] {
			if err := os.Remove(filepath.Join(dir, ent.Name())); err != nil {
				return fmt.Errorf("store: removing orphan segment: %w", err)
			}
		}
	}
	return s.startSegment(*man, entries)
}

// startSegment replays the live WAL chain (generations above
// FlushedGen), wires the committer to the newest log, and starts the
// background worker. entries may be a pre-scanned directory listing
// (nil to scan here).
//
//tvdp:serial runs single-threaded at Open, before the store is shared
func (s *Store) startSegment(man manifest, entries []os.DirEntry) error {
	dir := s.cfg.Dir
	if entries == nil {
		var err error
		entries, err = os.ReadDir(dir)
		if err != nil {
			return fmt.Errorf("store: scanning segment dir: %w", err)
		}
	}
	var gens []uint64
	for _, ent := range entries {
		g, ok := parseWALName(ent.Name())
		if !ok {
			continue
		}
		if g <= man.FlushedGen {
			// Fully contained in the manifest's segments.
			if err := os.Remove(filepath.Join(dir, ent.Name())); err != nil {
				return fmt.Errorf("store: removing flushed WAL: %w", err)
			}
			continue
		}
		gens = append(gens, g)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	for i, g := range gens {
		if want := gens[0] + uint64(i); g != want {
			return fmt.Errorf("%w: WAL generation %d missing from chain %v", ErrWALCorrupt, want, gens)
		}
	}
	if len(gens) > 0 && gens[0] != man.FlushedGen+1 {
		return fmt.Errorf("%w: WAL chain starts at generation %d, manifest flushed through %d", ErrWALCorrupt, gens[0], man.FlushedGen)
	}

	// The memtable must exist before replay: replayed ops rebuild it so
	// the next flush carries them.
	s.mem = newMemtable()
	// A torn tail anywhere in the chain is the usual bounded crash loss
	// — legal only while every later generation is frameless. Rotation
	// fsyncs a retiring log before the first frame can land in its
	// successor (committer.rotateTo), so frames above a torn predecessor
	// prove fully-synced bytes went missing: media corruption, refuse to
	// open. Tail repairs are deferred until the whole chain has been
	// validated — truncating eagerly would make a refused chain open
	// cleanly (with its mid-history hole) on the *next* attempt.
	type tailRepair struct {
		name string
		keep int64
	}
	var repairs []tailRepair
	torn := false
	for _, g := range gens {
		frames, keep, t, err := s.replaySegmentWAL(g)
		if err != nil {
			return err
		}
		if torn && frames > 0 {
			return fmt.Errorf("%w: %s holds %d frame(s) above an earlier generation's torn tail", ErrWALCorrupt, walName(g), frames)
		}
		if t {
			torn = true
			repairs = append(repairs, tailRepair{name: walName(g), keep: keep})
		}
	}
	for _, r := range repairs {
		if err := repairTornTail(filepath.Join(dir, r.name), r.keep); err != nil {
			return err
		}
	}
	var w *walWriter
	if len(gens) > 0 {
		var err error
		w, err = openWALAppend(dir, walName(gens[len(gens)-1]), s.cfg.WALSync)
		if err != nil {
			return err
		}
	} else {
		var err error
		s.gen = man.FlushedGen + 1
		w, err = createWAL(dir, walName(s.gen), s.gen, nil, s.cfg.WALSync)
		if err != nil {
			return err
		}
	}
	s.com = newWALCommitter(w, s.cfg.WALSync)
	e := &segEngine{
		s:      s,
		man:    man,
		flushC: make(chan struct{}, 1),
		stopC:  make(chan struct{}),
		doneC:  make(chan struct{}),
	}
	s.eng = e
	go e.run()
	return nil
}

// replaySegmentWAL replays one live generation's log into state and the
// memtable. It returns how many complete frames it applied, the byte
// length of the valid prefix (header included — the truncation point a
// torn tail should be repaired to), and whether the tail past that
// prefix is torn. It performs no repair and opens nothing for append:
// the caller (startSegment) validates the whole chain first — a torn
// tail is only legal while every later generation is frameless — and
// repairs the surviving logs afterwards.
//
//tvdp:serial WAL-tail replay runs single-threaded at Open
func (s *Store) replaySegmentWAL(gen uint64) (int, int64, bool, error) {
	dir := s.cfg.Dir
	name := walName(gen)
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		return 0, 0, false, fmt.Errorf("store: reading %s: %w", name, err)
	}
	if len(data) < walHeaderSize {
		// createWAL installs a log via temp + rename, so a file shorter
		// than its header cannot be a crash artifact; treat as corruption
		// rather than inventing state.
		return 0, 0, false, fmt.Errorf("%w: %s shorter than its header", ErrWALCorrupt, name)
	}
	if [8]byte(data[:8]) != walMagic {
		return 0, 0, false, fmt.Errorf("%w: bad magic in %s", ErrWALCorrupt, name)
	}
	if g := binary.LittleEndian.Uint64(data[8:walHeaderSize]); g != gen {
		return 0, 0, false, fmt.Errorf("%w: %s carries generation %d", ErrWALCorrupt, name, g)
	}
	frames := 0
	n, torn, err := walkWALFrames(data[walHeaderSize:], func(op walOp) error {
		frames++
		return s.applyOp(op)
	})
	if err != nil {
		return 0, 0, false, fmt.Errorf("store: replaying %s: %w", name, err)
	}
	s.memBytes.Add(int64(n))
	s.gen = gen
	return frames, int64(walHeaderSize + n), torn, nil
}

// loadSegment applies one segment's rows into in-memory state.
// Tombstones go first: they kill rows from older segments, and within a
// delete-then-readd window they clear the way for the segment's own
// fresh row. Runs single-threaded at Open.
//
//tvdp:serial segment load runs single-threaded at Open
func (s *Store) loadSegment(seg *segmentData) error {
	for _, id := range seg.Tombstones {
		if _, ok := s.images[id]; ok {
			if err := s.applyDeleteImage(id); err != nil {
				return err
			}
		}
	}
	for _, img := range seg.Images {
		if err := s.applyImage(img); err != nil {
			return err
		}
	}
	for _, c := range seg.Classifications {
		if err := s.applyClassification(c); err != nil {
			return err
		}
	}
	for _, u := range seg.Users {
		if err := s.applyUser(u); err != nil {
			return err
		}
	}
	for _, k := range seg.APIKeys {
		s.applyAPIKey(k)
	}
	for _, v := range seg.Videos {
		if err := s.applyVideo(v); err != nil {
			return err
		}
	}
	for _, c := range seg.Campaigns {
		if err := s.applyCampaign(c); err != nil {
			return err
		}
	}
	for _, f := range seg.Features {
		if err := s.applyFeature(f); err != nil {
			return err
		}
	}
	for _, a := range seg.Annotations {
		if err := s.applyAnnotation(a); err != nil {
			return err
		}
	}
	for _, k := range seg.Keywords {
		if err := s.applyKeywords(k.ImageID, k.Words); err != nil {
			return err
		}
	}
	s.bumpNextID(seg.NextID)
	return nil
}

// migrateLegacy converts a legacy snapshot.gob/wal.gob directory to the
// segment layout in place: load state through the legacy path, write it
// out as segment 1, install the manifest, delete the legacy files. A
// crash before the manifest install leaves the legacy layout intact
// (migration simply reruns); after it, the stale legacy files are swept
// by the next open.
//
//tvdp:serial legacy migration runs single-threaded at Open
func (s *Store) migrateLegacy() error {
	dir := s.cfg.Dir
	snap, err := readSnapshot(dir)
	if err != nil {
		return err
	}
	if snap != nil {
		if err := s.loadSnapshot(snap); err != nil {
			return err
		}
		s.gen = snap.Generation
	}
	w, err := recoverWAL(dir, s.gen, s.cfg.WALSync, s.applyOp)
	if err != nil {
		return err
	}
	if err := w.close(); err != nil {
		return fmt.Errorf("store: closing legacy WAL after migration replay: %w", err)
	}
	seg := s.stateToSegment()
	nbytes, err := writeSegment(dir, segName(1), seg)
	if err != nil {
		return err
	}
	man := manifest{
		Version:    manifestVersion,
		FlushedGen: s.gen,
		NextSeg:    2,
		Segments:   []segmentRef{{Name: segName(1), Rows: seg.rows(), Bytes: nbytes}},
	}
	if err := writeManifest(dir, man); err != nil {
		return err
	}
	for _, legacy := range []string{snapshotFile, walFile} {
		if err := os.Remove(filepath.Join(dir, legacy)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("store: removing migrated legacy file: %w", err)
		}
	}
	if err := fsyncDir(dir); err != nil {
		return err
	}
	return s.startSegment(man, nil)
}

// stateToSegment serialises the whole in-memory state as one segment —
// the migration image. Single-threaded at Open; mirrors snapshotLocked's
// sorted collection.
//
//tvdp:serial runs single-threaded at Open, before the store is shared
func (s *Store) stateToSegment() *segmentData {
	m := newMemtable()
	for _, id := range s.ids {
		m.addImage(s.images[id])
	}
	for id, kinds := range s.features {
		for kind, vec := range kinds {
			m.putFeature(&Feature{ImageID: id, Kind: kind, Vec: vec})
		}
	}
	for _, c := range s.classifications {
		m.addClass(c)
	}
	for id, anns := range s.annotations {
		for i := range anns {
			a := anns[i]
			a.ImageID = id
			m.addAnnotation(&a)
		}
	}
	for id, words := range s.keywords {
		m.keywords[id] = append([]string(nil), words...)
	}
	for _, u := range s.users {
		m.addUser(u)
	}
	for _, k := range s.apiKeys {
		m.addAPIKey(k)
	}
	for _, v := range s.videos {
		m.addVideo(v)
	}
	for _, c := range s.campaigns {
		m.addCampaign(c)
	}
	m.nextID = s.nextID.Load()
	return m.toSegment(true)
}

// ---- Observability ----

// EngineStats reports persistence-engine activity since Open.
type EngineStats struct {
	// Engine is the configured persistence engine.
	Engine Engine
	// Segments and SegmentBytes describe the live segment set (segment
	// engine only).
	Segments     int
	SegmentBytes int64
	// MemBytes is the current memtable's WAL-byte footprint — the bound
	// on replay work if the process died now.
	MemBytes int64
	// Flushes and Compactions count completed background operations.
	Flushes     uint64
	Compactions uint64
	// Snapshots counts full-snapshot compactions (snapshot engine only).
	Snapshots uint64
}

// EngineStats returns persistence counters (zero Engine stats for
// memory-only stores).
func (s *Store) EngineStats() EngineStats {
	st := EngineStats{Engine: s.cfg.Engine, Snapshots: s.snaps.Load()}
	if s.eng == nil {
		return st
	}
	st.MemBytes = s.memBytes.Load()
	st.Flushes = s.eng.flushes.Load()
	st.Compactions = s.eng.compactions.Load()
	s.eng.manMu.Lock()
	st.Segments = len(s.eng.man.Segments)
	for _, ref := range s.eng.man.Segments {
		st.SegmentBytes += ref.Bytes
	}
	s.eng.manMu.Unlock()
	return st
}
