package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/geo"
)

// segFiles lists the segment-layout files present in dir, for asserting
// on the on-disk state machine.
func segFiles(t *testing.T, dir string) map[string]bool {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]bool, len(entries))
	for _, e := range entries {
		out[e.Name()] = true
	}
	return out
}

// TestSegmentFlushRecoverRoundtrip drives every row kind through a
// flush and a reopen: the segment must carry the whole frozen window and
// recovery must rebuild it without touching the (deleted) WAL.
func TestSegmentFlushRecoverRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s := diskStore(t, dir)
	classID, err := s.CreateClassification("scene", []string{"clean", "littered"})
	if err != nil {
		t.Fatal(err)
	}
	var ids []uint64
	for i := 0; i < 3; i++ {
		id, err := s.AddImage(tinyImage(t, float64(i*30)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := s.PutFeature(ids[0], "hist", []float64{0.25, 0.75}); err != nil {
		t.Fatal(err)
	}
	if err := s.Annotate(Annotation{ImageID: ids[0], ClassificationID: classID, Label: 1, Confidence: 1, Source: SourceHuman}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddKeywords(ids[0], []string{"pole", "sidewalk"}); err != nil {
		t.Fatal(err)
	}
	uid, err := s.CreateUser("w-1", "worker")
	if err != nil {
		t.Fatal(err)
	}
	key, err := s.IssueAPIKey(uid, time.Date(2019, 2, 1, 0, 0, 0, 0, time.UTC))
	if err != nil {
		t.Fatal(err)
	}
	img := tinyImage(t, 100)
	vidID, frameIDs, err := s.AddVideo("survey", "w-1", []Frame{
		{Pixels: img.Pixels, FOV: img.FOV, CapturedAt: img.TimestampCapturing, Keywords: []string{"drone"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	campID, err := s.CreateCampaign(CampaignRec{Name: "dtla", Region: geoRectAround(t), TargetCoverage: 0.5})
	if err != nil {
		t.Fatal(err)
	}

	// Snapshot on the segment engine is a forced flush.
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	files := segFiles(t, dir)
	if !files[manifestFile] || !files[segName(1)] {
		t.Fatalf("after flush: files %v, want %s and %s", files, manifestFile, segName(1))
	}
	if files[walName(1)] {
		t.Fatalf("after flush: flushed %s still present", walName(1))
	}
	if !files[walName(2)] {
		t.Fatalf("after flush: live log %s missing", walName(2))
	}
	st := s.EngineStats()
	if st.Engine != EngineSegment || st.Flushes != 1 || st.Segments != 1 || st.MemBytes != 0 {
		t.Fatalf("stats after flush: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := diskStore(t, dir)
	defer r.Close()
	if got := r.NumImages(); got != 4 { // 3 stills + 1 video frame
		t.Fatalf("recovered %d images, want 4", got)
	}
	if vec, err := r.GetFeature(ids[0], "hist"); err != nil || len(vec) != 2 {
		t.Fatalf("feature: %v %v", vec, err)
	}
	if anns := r.AnnotationsFor(ids[0]); len(anns) != 1 || anns[0].Label != 1 {
		t.Fatalf("annotations: %+v", anns)
	}
	if kw := r.KeywordsFor(ids[0]); len(kw) != 2 {
		t.Fatalf("keywords: %v", kw)
	}
	if _, err := r.Authenticate(key); err != nil {
		t.Fatalf("API key lost in flush: %v", err)
	}
	v, err := r.GetVideo(vidID)
	if err != nil || len(v.FrameIDs) != 1 || v.FrameIDs[0] != frameIDs[0] {
		t.Fatalf("video: %+v %v", v, err)
	}
	if _, err := r.GetCampaign(campID); err != nil {
		t.Fatal(err)
	}
	// The allocator must resume above the flushed high-water mark.
	nid, err := r.AddImage(tinyImage(t, 200))
	if err != nil {
		t.Fatal(err)
	}
	for _, old := range append(ids, frameIDs...) {
		if nid == old {
			t.Fatalf("ID %d reused after recovery", nid)
		}
	}
}

func geoRectAround(t *testing.T) geo.Rect {
	t.Helper()
	return geo.Rect{MinLat: la.Lat - 1, MinLon: la.Lon - 1, MaxLat: la.Lat + 1, MaxLon: la.Lon + 1}
}

// TestSegmentCompaction checks the merge: two segments plus a live
// window collapse to one segment holding every row, inputs deleted,
// recovery unaffected.
func TestSegmentCompaction(t *testing.T) {
	dir := t.TempDir()
	s := diskStore(t, dir)
	for i := 0; i < 2; i++ {
		if _, err := s.AddImage(tinyImage(t, float64(i*20))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for i := 2; i < 4; i++ {
		if _, err := s.AddImage(tinyImage(t, float64(i*20))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if st := s.EngineStats(); st.Segments != 2 || st.Flushes != 2 {
		t.Fatalf("pre-compaction stats: %+v", st)
	}
	if err := s.eng.compactOnce(); err != nil {
		t.Fatal(err)
	}
	st := s.EngineStats()
	if st.Segments != 1 || st.Compactions != 1 {
		t.Fatalf("post-compaction stats: %+v", st)
	}
	files := segFiles(t, dir)
	if files[segName(1)] || files[segName(2)] || !files[segName(3)] {
		t.Fatalf("post-compaction files: %v", files)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := diskStore(t, dir)
	defer r.Close()
	if got := r.NumImages(); got != 4 {
		t.Fatalf("recovered %d images after compaction, want 4", got)
	}
}

// TestSegmentTombstones: a delete flushed into a later segment must kill
// the row from the earlier one on recovery, and compaction must drop
// both the tombstone and the dead row for good.
func TestSegmentTombstones(t *testing.T) {
	dir := t.TempDir()
	s := diskStore(t, dir)
	var ids []uint64
	for i := 0; i < 3; i++ {
		id, err := s.AddImage(tinyImage(t, float64(i*30)))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.AddKeywords(id, []string{"k"}); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := s.Snapshot(); err != nil { // seg 1 holds all three rows
		t.Fatal(err)
	}
	if err := s.DeleteImage(ids[1]); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(); err != nil { // seg 2 holds the tombstone
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := diskStore(t, dir)
	if got := r.NumImages(); got != 2 {
		t.Fatalf("recovered %d images, want 2 (tombstone ignored)", got)
	}
	if _, err := r.GetImage(ids[1]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted image resurrected: err = %v", err)
	}
	if kw := r.KeywordsFor(ids[1]); len(kw) != 0 {
		t.Fatalf("deleted image keywords resurrected: %v", kw)
	}
	if err := r.eng.compactOnce(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2 := diskStore(t, dir)
	defer r2.Close()
	if got := r2.NumImages(); got != 2 {
		t.Fatalf("post-compaction recovery: %d images, want 2", got)
	}
	if _, err := r2.GetImage(ids[1]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("tombstoned row back after compaction: err = %v", err)
	}
}

// TestSegmentWALTailRecovery: ops after the last flush live only in the
// WAL tail; a crash (no Close) must replay them, rebuild the memtable,
// and let the next flush carry them into a segment.
func TestSegmentWALTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s := diskStore(t, dir)
	for i := 0; i < 2; i++ {
		if _, err := s.AddImage(tinyImage(t, float64(i*20))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for i := 2; i < 5; i++ {
		if _, err := s.AddImage(tinyImage(t, float64(i*20))); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: walk away without Close.

	r := diskStore(t, dir)
	defer r.Close()
	if got := r.NumImages(); got != 5 {
		t.Fatalf("recovered %d images, want 5", got)
	}
	// Replay rebuilt the memtable: the tail ops are flushable.
	if st := r.EngineStats(); st.MemBytes == 0 {
		t.Fatal("replayed WAL tail left MemBytes == 0; next flush would drop it")
	}
	if err := r.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if st := r.EngineStats(); st.Segments != 2 || st.MemBytes != 0 {
		t.Fatalf("stats after post-recovery flush: %+v", st)
	}
}

// TestSegmentBackgroundFlush checks the data path that production uses:
// crossing FlushThreshold kicks the background worker, which flushes —
// and, at CompactSegments live segments, compacts — without any forced
// Snapshot call.
func TestSegmentBackgroundFlush(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.Dir = dir
	cfg.FlushThreshold = 1 // every committed batch crosses it
	cfg.CompactSegments = 3
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 12; i++ {
		if _, err := s.AddImage(tinyImage(t, float64(i*13%360))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := s.EngineStats()
		if st.Flushes >= 1 && st.Compactions >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background worker idle: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
		// Keep feeding so the worker has something to flush even if the
		// earlier kicks coalesced.
		if _, err := s.AddImage(tinyImage(t, 77)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestLegacySnapshotMigration: a directory written by the snapshot
// engine (snapshot.gob + wal.gob tail) opens under the segment engine,
// comes back intact, and is rewritten in place as segment 1 + MANIFEST
// with the legacy files gone.
func TestLegacySnapshotMigration(t *testing.T) {
	dir := t.TempDir()
	s := snapStore(t, dir)
	var ids []uint64
	for i := 0; i < 3; i++ {
		id, err := s.AddImage(tinyImage(t, float64(i*30)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := s.AddKeywords(ids[0], []string{"legacy"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(); err != nil { // snapshot.gob at generation 1
		t.Fatal(err)
	}
	if _, err := s.AddImage(tinyImage(t, 100)); err != nil { // wal.gob tail
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	m := diskStore(t, dir) // default engine = segment → migrates
	if got := m.NumImages(); got != 4 {
		t.Fatalf("migrated %d images, want 4", got)
	}
	if kw := m.KeywordsFor(ids[0]); len(kw) != 1 || kw[0] != "legacy" {
		t.Fatalf("keywords lost in migration: %v", kw)
	}
	files := segFiles(t, dir)
	if files[snapshotFile] || files[walFile] {
		t.Fatalf("legacy files survive migration: %v", files)
	}
	if !files[manifestFile] || !files[segName(1)] {
		t.Fatalf("migrated layout incomplete: %v", files)
	}
	if _, err := m.AddImage(tinyImage(t, 200)); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	r := diskStore(t, dir)
	defer r.Close()
	if got := r.NumImages(); got != 5 {
		t.Fatalf("post-migration reopen: %d images, want 5", got)
	}
}

// TestSnapshotEngineRefusesSegmentDir: opening a MANIFEST-bearing
// directory under the legacy engine must fail loudly instead of starting
// an empty store beside the real data.
func TestSnapshotEngineRefusesSegmentDir(t *testing.T) {
	dir := t.TempDir()
	s := diskStore(t, dir)
	if _, err := s.AddImage(tinyImage(t, 10)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Dir = dir
	cfg.Engine = EngineSnapshot
	if _, err := Open(cfg); err == nil {
		t.Fatal("snapshot engine opened a segment-engine directory")
	}
}

// TestParseEngineAndSyncMode covers the flag-string surface.
func TestParseEngineAndSyncMode(t *testing.T) {
	if e, err := ParseEngine("segment"); err != nil || e != EngineSegment {
		t.Fatalf("ParseEngine(segment) = %v, %v", e, err)
	}
	if e, err := ParseEngine("snapshot"); err != nil || e != EngineSnapshot {
		t.Fatalf("ParseEngine(snapshot) = %v, %v", e, err)
	}
	if _, err := ParseEngine("lsm"); err == nil {
		t.Fatal("ParseEngine accepted unknown engine")
	}
	for _, tc := range []struct {
		in   string
		want WALSyncMode
		ok   bool
	}{
		{"", SyncBatch, true},
		{"batch", SyncBatch, true},
		{"immediate", SyncImmediate, true},
		{"none", SyncNone, true},
		{"fsync", 0, false},
	} {
		m, err := ParseWALSyncMode(tc.in)
		if tc.ok && (err != nil || m != tc.want) {
			t.Fatalf("ParseWALSyncMode(%q) = %v, %v", tc.in, m, err)
		}
		if !tc.ok && err == nil {
			t.Fatalf("ParseWALSyncMode(%q) accepted", tc.in)
		}
	}
}

// TestParseWALName: walName's %06d is a minimum print width, so names
// grow past six digits after ~1M flushes; the parse must take every
// digit and reject non-log names.
func TestParseWALName(t *testing.T) {
	for _, tc := range []struct {
		in  string
		gen uint64
		ok  bool
	}{
		{"wal-000001.log", 1, true},
		{"wal-999999.log", 999999, true},
		{"wal-1000000.log", 1000000, true},
		{"wal-18446744073709551615.log", 18446744073709551615, true},
		{"wal-.log", 0, false},
		{"wal-12x.log", 0, false},
		{"wal-000001.log.tmp", 0, false},
		{"seg-000001.seg", 0, false},
		{"MANIFEST", 0, false},
	} {
		g, ok := parseWALName(tc.in)
		if ok != tc.ok || g != tc.gen {
			t.Errorf("parseWALName(%q) = %d, %v; want %d, %v", tc.in, g, ok, tc.gen, tc.ok)
		}
	}
	if name := walName(1000000); name != "wal-1000000.log" {
		t.Fatalf("walName(1000000) = %q", name)
	}
}

// TestSegmentWALChainMillionGenerations: a chain past generation 999999
// (seven-digit filenames) must open, flush, and reopen — a width-limited
// parse would misread the generation and fail the chain-contiguity
// check.
func TestSegmentWALChainMillionGenerations(t *testing.T) {
	dir := t.TempDir()
	if err := writeManifest(dir, manifest{Version: manifestVersion, FlushedGen: 999999, NextSeg: 1}); err != nil {
		t.Fatal(err)
	}
	for _, gen := range []uint64{1000000, 1000001} {
		w, err := createWAL(dir, walName(gen), gen, nil, SyncBatch)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.close(); err != nil {
			t.Fatal(err)
		}
	}
	s := diskStore(t, dir)
	if _, err := s.AddImage(tinyImage(t, 10)); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := diskStore(t, dir)
	defer r.Close()
	if got := r.NumImages(); got != 1 {
		t.Fatalf("recovered %d images, want 1", got)
	}
}

// TestFlushFailureFailStop: a flush that dies after the freeze-swap
// leaves the frozen window's only durable copy in its retired WAL
// generations. The engine must fail-stop — refuse later flushes rather
// than advance FlushedGen past those generations and delete them — so a
// restart recovers every acked row.
func TestFlushFailureFailStop(t *testing.T) {
	dir := t.TempDir()
	s := diskStore(t, dir)
	for i := 0; i < 2; i++ {
		if _, err := s.AddImage(tinyImage(t, float64(i*20))); err != nil {
			t.Fatal(err)
		}
	}
	restore := installFaultMatch(faultCut, 0, "seg-")
	err := s.Snapshot()
	restore()
	if err == nil {
		t.Fatal("flush with torn segment write reported success")
	}
	// The first window now lives only in wal-1; this lands in wal-2.
	if _, err := s.AddImage(tinyImage(t, 50)); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(); err == nil {
		t.Fatal("flush after a failed flush must fail-stop, not advance FlushedGen")
	}
	if !segFiles(t, dir)[walName(1)] {
		t.Fatalf("failed window's log %s deleted; its rows have no durable copy", walName(1))
	}
	s.Close() // surfaces the recorded error; the data is already on disk
	r := diskStore(t, dir)
	defer r.Close()
	if got := r.NumImages(); got != 3 {
		t.Fatalf("recovered %d images after failed flush, want 3", got)
	}
}

// tearWALTail appends a partial frame to a closed log, modelling a tail
// whose last batch never fully hit the disk before a power loss.
func tearWALTail(t *testing.T, dir string, gen uint64) {
	t.Helper()
	f, err := os.OpenFile(filepath.Join(dir, walName(gen)), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xDE, 0xAD, 0xBE}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRotationCrashTornRetiringTail models a power loss inside the
// rotation window: the pre-created next generation is already durable
// but the retiring log's unsynced tail never hit the disk. Because the
// successor holds no frames, recovery must treat the torn tail as the
// usual bounded crash loss — repair it and continue — not refuse the
// chain.
func TestRotationCrashTornRetiringTail(t *testing.T) {
	dir := t.TempDir()
	s := diskStore(t, dir)
	for i := 0; i < 2; i++ {
		if _, err := s.AddImage(tinyImage(t, float64(i*20))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	tearWALTail(t, dir, 1)
	w, err := createWAL(dir, walName(2), 2, nil, SyncBatch)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}

	r := diskStore(t, dir)
	defer r.Close()
	if got := r.NumImages(); got != 2 {
		t.Fatalf("recovered %d images, want 2 (torn tail repaired)", got)
	}
	// The repaired chain must stay appendable and flushable.
	if _, err := r.AddImage(tinyImage(t, 70)); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot(); err != nil {
		t.Fatal(err)
	}
}

// TestTornTailUnderLaterFramesRefused: rotation fsyncs a retiring log
// before any frame can land in its successor, so frames in a later
// generation above a torn tail prove fully-synced bytes went missing.
// The store must refuse to open — and must not repair anything on the
// failed attempt, or the refusal would vanish on the next open and serve
// a corpus with a mid-history hole.
func TestTornTailUnderLaterFramesRefused(t *testing.T) {
	dir := t.TempDir()
	s := diskStore(t, dir)
	for i := 0; i < 2; i++ {
		if _, err := s.AddImage(tinyImage(t, float64(i*20))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	tearWALTail(t, dir, 1)
	w, err := createWAL(dir, walName(2), 2,
		[]walOp{{Kind: opAddUser, User: &User{ID: 7, Name: "u", Role: "worker"}}}, SyncBatch)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Dir = dir
	for attempt := 0; attempt < 2; attempt++ {
		if _, err := Open(cfg); !errors.Is(err, ErrWALCorrupt) {
			t.Fatalf("attempt %d: Open = %v, want ErrWALCorrupt", attempt, err)
		}
	}
}

// TestWALSyncModesRoundTrip runs a small workload under each sync mode
// on the segment engine; all three must keep the store reopenable with a
// clean Close, whatever their crash-durability windows.
func TestWALSyncModesRoundTrip(t *testing.T) {
	for _, mode := range []WALSyncMode{SyncBatch, SyncImmediate, SyncNone} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			cfg := DefaultConfig()
			cfg.Dir = dir
			cfg.WALSync = mode
			s, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 5; i++ {
				if _, err := s.AddImage(tinyImage(t, float64(i*20))); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			r := diskStore(t, dir)
			defer r.Close()
			if got := r.NumImages(); got != 5 {
				t.Fatalf("mode %v: recovered %d images, want 5", mode, got)
			}
		})
	}
}
