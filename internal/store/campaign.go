package store

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/geo"
)

// Campaign rows: a participant-created data-collection campaign over a
// region (paper §III: "enabling a participant to create a data collection
// campaign for certain types of visual data at specific locations").
// Images uploaded toward a campaign carry its ID, which lets the platform
// measure per-campaign progress.

// CampaignRec is the stored campaign entity.
type CampaignRec struct {
	ID     uint64
	Name   string
	Region geo.Rect
	// TargetCoverage in (0, 1] is the campaign's goal.
	TargetCoverage float64
	// CreatedBy references the owning user (0 = unknown).
	CreatedBy uint64
	CreatedAt time.Time
}

// CreateCampaign registers a campaign and returns its ID.
func (s *Store) CreateCampaign(c CampaignRec) (uint64, error) {
	if c.Name == "" {
		return 0, fmt.Errorf("%w: campaign needs a name", ErrInvalid)
	}
	if !c.Region.Valid() || c.Region.Area() == 0 {
		return 0, fmt.Errorf("%w: campaign needs a non-degenerate region", ErrInvalid)
	}
	if c.TargetCoverage <= 0 || c.TargetCoverage > 1 {
		return 0, fmt.Errorf("%w: target coverage %.3f out of (0,1]", ErrInvalid, c.TargetCoverage)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	s.nextID++
	c.ID = s.nextID
	if err := s.applyCampaign(&c); err != nil {
		return 0, err
	}
	if err := s.log(walOp{Kind: opAddCampaign, Campaign: &c}); err != nil {
		return 0, err
	}
	return c.ID, nil
}

func (s *Store) applyCampaign(c *CampaignRec) error {
	if _, dup := s.campaigns[c.ID]; dup {
		return fmt.Errorf("%w: campaign %d", ErrDuplicate, c.ID)
	}
	if c.ID > s.nextID {
		s.nextID = c.ID
	}
	s.campaigns[c.ID] = c
	return nil
}

// GetCampaign returns a campaign by ID.
func (s *Store) GetCampaign(id uint64) (CampaignRec, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.campaigns[id]
	if !ok {
		return CampaignRec{}, fmt.Errorf("%w: campaign %d", ErrNotFound, id)
	}
	return *c, nil
}

// Campaigns lists all campaigns sorted by ID.
func (s *Store) Campaigns() []CampaignRec {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]CampaignRec, 0, len(s.campaigns))
	for _, c := range s.campaigns {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// CampaignImages returns the IDs of images uploaded toward a campaign,
// ascending.
func (s *Store) CampaignImages(campaignID uint64) []uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []uint64
	for id, img := range s.images {
		if img.CampaignID == campaignID {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FOVsInRegion returns the FOVs of all images whose scenes intersect the
// region — the input to coverage measurement.
func (s *Store) FOVsInRegion(r geo.Rect) []geo.FOV {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := s.spatial.SearchRect(r)
	out := make([]geo.FOV, 0, len(ids))
	for _, id := range ids {
		if img, ok := s.images[id]; ok {
			out = append(out, img.FOV)
		}
	}
	return out
}
