package store

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/geo"
)

// Campaign rows: a participant-created data-collection campaign over a
// region (paper §III: "enabling a participant to create a data collection
// campaign for certain types of visual data at specific locations").
// Images uploaded toward a campaign carry its ID, which lets the platform
// measure per-campaign progress.

// CampaignRec is the stored campaign entity.
type CampaignRec struct {
	ID     uint64
	Name   string
	Region geo.Rect
	// TargetCoverage in (0, 1] is the campaign's goal.
	TargetCoverage float64
	// CreatedBy references the owning user (0 = unknown).
	CreatedBy uint64
	CreatedAt time.Time
}

// CreateCampaign registers a campaign and returns its ID. A zero c.ID is
// allocated here; a preset ID (from the shard coordinator's global
// allocator) is honored as-is.
func (s *Store) CreateCampaign(c CampaignRec) (uint64, error) {
	if c.Name == "" {
		return 0, fmt.Errorf("%w: campaign needs a name", ErrInvalid)
	}
	if !c.Region.Valid() || c.Region.Area() == 0 {
		return 0, fmt.Errorf("%w: campaign needs a non-degenerate region", ErrInvalid)
	}
	if c.TargetCoverage <= 0 || c.TargetCoverage > 1 {
		return 0, fmt.Errorf("%w: target coverage %.3f out of (0,1]", ErrInvalid, c.TargetCoverage)
	}
	if s.closed.Load() {
		return 0, ErrClosed
	}
	if c.ID == 0 {
		c.ID = s.nextID.Add(1)
	}
	frame, err := s.encode(walOp{Kind: opAddCampaign, Campaign: &c})
	if err != nil {
		return 0, err
	}
	s.catalogMu.Lock()
	if s.closed.Load() {
		s.catalogMu.Unlock()
		return 0, ErrClosed
	}
	if err := s.applyCampaign(&c); err != nil {
		s.catalogMu.Unlock()
		return 0, err
	}
	wait := s.enqueue(frame)
	s.catalogMu.Unlock()
	if err := s.awaitCommit(wait, 1); err != nil {
		return 0, err
	}
	return c.ID, nil
}

// applyCampaign registers a campaign row. Callers hold catalogMu.
//
//tvdp:requires catalogMu
func (s *Store) applyCampaign(c *CampaignRec) error {
	if _, dup := s.campaigns[c.ID]; dup {
		return fmt.Errorf("%w: campaign %d", ErrDuplicate, c.ID)
	}
	s.bumpNextID(c.ID)
	s.campaigns[c.ID] = c
	if s.mem != nil {
		s.mem.addCampaign(c)
	}
	return nil
}

// GetCampaign returns a campaign by ID.
func (s *Store) GetCampaign(id uint64) (CampaignRec, error) {
	s.catalogMu.RLock()
	defer s.catalogMu.RUnlock()
	c, ok := s.campaigns[id]
	if !ok {
		return CampaignRec{}, fmt.Errorf("%w: campaign %d", ErrNotFound, id)
	}
	return *c, nil
}

// Campaigns lists all campaigns sorted by ID.
func (s *Store) Campaigns() []CampaignRec {
	s.catalogMu.RLock()
	defer s.catalogMu.RUnlock()
	out := make([]CampaignRec, 0, len(s.campaigns))
	for _, c := range s.campaigns {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// CampaignImages returns the IDs of images uploaded toward a campaign,
// ascending.
func (s *Store) CampaignImages(campaignID uint64) []uint64 {
	s.imagesMu.RLock()
	defer s.imagesMu.RUnlock()
	var out []uint64
	for id, img := range s.images {
		if img.CampaignID == campaignID {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FOVsInRegion returns the FOVs of all images whose scenes intersect the
// region — the input to coverage measurement. Lock order: imagesMu →
// geoMu.
func (s *Store) FOVsInRegion(r geo.Rect) []geo.FOV {
	s.imagesMu.RLock()
	defer s.imagesMu.RUnlock()
	s.geoMu.RLock()
	ids := s.spatial.SearchRect(r)
	s.geoMu.RUnlock()
	out := make([]geo.FOV, 0, len(ids))
	for _, id := range ids {
		if img, ok := s.images[id]; ok {
			out = append(out, img.FOV)
		}
	}
	return out
}
