package store

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"
)

// Engine-equivalence tests: the persistence engine is a durability
// implementation detail, so a fixed op sequence must yield an identical
// Backend query surface whichever engine journals it — before a flush,
// after one, after compaction, and after recovery.

// equivWorkload drives the fixed mixed op sequence. checkpoint is called
// at the points where the segment engine is forced to flush, so the
// sequence spans multiple segments there (and is a no-op elsewhere).
func equivWorkload(t *testing.T, s *Store, checkpoint func()) {
	t.Helper()
	classID, err := s.CreateClassification("scene", []string{"clean", "littered"})
	if err != nil {
		t.Fatal(err)
	}
	var ids []uint64
	for i := 0; i < 5; i++ {
		id, err := s.AddImage(tinyImage(t, float64(i*30)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := s.PutFeature(ids[0], "hist", []float64{0.25, 0.75}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutFeature(ids[1], "hist", []float64{0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := s.Annotate(Annotation{ImageID: ids[0], ClassificationID: classID, Label: 1, Confidence: 1, Source: SourceHuman}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddKeywords(ids[0], []string{"pole", "sidewalk"}); err != nil {
		t.Fatal(err)
	}
	checkpoint() // segment engines flush here: rows above land in seg A
	if _, err := s.CreateUser("w-1", "worker"); err != nil {
		t.Fatal(err)
	}
	img := tinyImage(t, 100)
	if _, _, err := s.AddVideo("survey", "w-1", []Frame{
		{Pixels: img.Pixels, FOV: img.FOV, CapturedAt: img.TimestampCapturing, Keywords: []string{"drone"}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateCampaign(CampaignRec{Name: "dtla", Region: geoRectAround(t), TargetCoverage: 0.5}); err != nil {
		t.Fatal(err)
	}
	// Delete a row that is already in seg A: the tombstone must kill it
	// across the segment boundary.
	if err := s.DeleteImage(ids[2]); err != nil {
		t.Fatal(err)
	}
	if err := s.Annotate(Annotation{ImageID: ids[1], ClassificationID: classID, Label: 0, Confidence: 0.9, Source: SourceMachine}); err != nil {
		t.Fatal(err)
	}
	checkpoint() // seg B: user, video, campaign, tombstone, annotation
	if _, err := s.AddImage(tinyImage(t, 200)); err != nil {
		t.Fatal(err)
	}
	if err := s.AddKeywords(ids[3], []string{"lamp"}); err != nil {
		t.Fatal(err)
	}
	// The tail above stays in the WAL window — unflushed on purpose.
}

// querySurface renders every deterministic Backend read as one string —
// the comparison fingerprint. API keys are excluded (IssueAPIKey mints
// random keys, so two stores can never agree on them byte-for-byte).
func querySurface(t *testing.T, s *Store) string {
	t.Helper()
	ctx := context.Background()
	var b strings.Builder
	p := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }
	p("num=%d gen-moves=n/a ids=%v last=%d", s.NumImages(), s.ImageIDs(), s.LastID())
	for _, id := range s.ImageIDs() {
		img, err := s.GetImage(id)
		if err != nil {
			t.Fatalf("GetImage(%d): %v", id, err)
		}
		p("img %d: fov=%+v ts=%s worker=%s scene=%+v", id, img.FOV, img.TimestampCapturing.UTC(), img.WorkerID, img.Scene)
		d, err := s.Describe(id)
		if err != nil {
			t.Fatalf("Describe(%d): %v", id, err)
		}
		p("desc %d: %+v", id, d)
		p("anns %d: %+v", id, s.AnnotationsFor(id))
		p("kw %d: %v", id, s.KeywordsFor(id))
		for _, kind := range s.FeatureKinds(id) {
			vec, err := s.GetFeature(id, kind)
			if err != nil {
				t.Fatal(err)
			}
			p("feat %d %s: %v", id, kind, vec)
		}
	}
	p("classes: %+v", s.Classifications())
	for _, c := range s.Classifications() {
		for label := range c.Labels {
			p("bylabel %d/%d: %v", c.ID, label, s.ImagesByLabel(c.ID, label))
		}
	}
	p("videos: %+v", s.Videos())
	p("campaigns: %+v", s.Campaigns())
	for _, c := range s.Campaigns() {
		p("campimgs %d: %v", c.ID, s.CampaignImages(c.ID))
	}
	region := geoRectAround(t)
	p("fovs: %d", len(s.FOVsInRegion(region)))
	scene, err := s.SearchScene(ctx, region)
	if err != nil {
		t.Fatal(err)
	}
	p("scene: %v", scene)
	near, err := s.SearchNearest(ctx, la, 3)
	if err != nil {
		t.Fatal(err)
	}
	p("nearest: %v", near)
	vis, err := s.SearchVisualExact(ctx, "hist", []float64{0.3, 0.7}, 2)
	if err != nil {
		t.Fatal(err)
	}
	p("visual: %+v", vis)
	text, err := s.SearchText(ctx, []string{"pole", "lamp"})
	if err != nil {
		t.Fatal(err)
	}
	p("text: %+v", text)
	from := time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC)
	to := time.Date(2019, 12, 31, 0, 0, 0, 0, time.UTC)
	tm, err := s.SearchTime(ctx, from, to)
	if err != nil {
		t.Fatal(err)
	}
	p("time: %v", tm)
	return b.String()
}

func diffSurfaces(t *testing.T, label, want, got string) {
	t.Helper()
	if want == got {
		return
	}
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if wl[i] != gl[i] {
			t.Fatalf("%s: query surface diverges at line %d:\n  want %q\n  got  %q", label, i, wl[i], gl[i])
		}
	}
	t.Fatalf("%s: query surfaces differ in length (%d vs %d lines)", label, len(wl), len(gl))
}

// TestEngineEquivalence runs the fixed workload through the snapshot
// engine and the segment engine (with forced flushes splitting it across
// segments) and requires identical query surfaces — live, after
// compaction, and after a reopen of each.
func TestEngineEquivalence(t *testing.T) {
	snapDir := t.TempDir()
	snap := snapStore(t, snapDir)
	equivWorkload(t, snap, func() {})
	want := querySurface(t, snap)

	segDir := t.TempDir()
	seg := diskStore(t, segDir)
	equivWorkload(t, seg, func() {
		if err := seg.Snapshot(); err != nil {
			t.Fatal(err)
		}
	})
	diffSurfaces(t, "segment live", want, querySurface(t, seg))
	if st := seg.EngineStats(); st.Segments != 2 {
		t.Fatalf("workload spread over %d segments, want 2", st.Segments)
	}
	if err := seg.eng.compactOnce(); err != nil {
		t.Fatal(err)
	}
	diffSurfaces(t, "segment compacted", want, querySurface(t, seg))

	if err := snap.Close(); err != nil {
		t.Fatal(err)
	}
	if err := seg.Close(); err != nil {
		t.Fatal(err)
	}
	snap2 := snapStore(t, snapDir)
	defer snap2.Close()
	diffSurfaces(t, "snapshot reopened", want, querySurface(t, snap2))
	seg2 := diskStore(t, segDir)
	defer seg2.Close()
	diffSurfaces(t, "segment reopened", want, querySurface(t, seg2))
}

// TestGenerationMovesOnEveryWrite pins the Backend contract the caches
// depend on: every data-plane write advances Generation(), under both
// engines.
func TestGenerationMovesOnEveryWrite(t *testing.T) {
	for _, engine := range []Engine{EngineSnapshot, EngineSegment} {
		t.Run(string(engine), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Dir = t.TempDir()
			cfg.Engine = engine
			s, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			classID, err := s.CreateClassification("scene", []string{"a", "b"})
			if err != nil {
				t.Fatal(err)
			}
			// Steps cover every data-plane mutation kind mutGen is
			// documented to count (store.go): images, features,
			// annotations, keywords, classifications, videos, deletes.
			// Users and campaigns are control-plane and excluded.
			var id uint64
			img := tinyImage(t, 100)
			steps := []struct {
				name string
				op   func() error
			}{
				{"CreateClassification", func() error { _, e := s.CreateClassification("scene2", []string{"x"}); return e }},
				{"AddImage", func() error { var e error; id, e = s.AddImage(tinyImage(t, 10)); return e }},
				{"PutFeature", func() error { return s.PutFeature(id, "hist", []float64{1}) }},
				{"Annotate", func() error {
					return s.Annotate(Annotation{ImageID: id, ClassificationID: classID, Label: 1, Confidence: 1, Source: SourceHuman})
				}},
				{"AddKeywords", func() error { return s.AddKeywords(id, []string{"k"}) }},
				{"AddVideo", func() error {
					_, _, e := s.AddVideo("v", "w", []Frame{{Pixels: img.Pixels, FOV: img.FOV, CapturedAt: img.TimestampCapturing}})
					return e
				}},
				{"DeleteImage", func() error { return s.DeleteImage(id) }},
			}
			for _, step := range steps {
				before := s.Generation()
				if err := step.op(); err != nil {
					t.Fatalf("%s: %v", step.name, err)
				}
				if after := s.Generation(); after <= before {
					t.Fatalf("%s: Generation() stuck at %d", step.name, after)
				}
			}
			// A flush is not a data-plane write; it must serve the same
			// generation (callers' caches stay warm across flushes).
			before := s.Generation()
			if err := s.Snapshot(); err != nil {
				t.Fatal(err)
			}
			if after := s.Generation(); after != before {
				t.Fatalf("flush moved Generation() %d -> %d", before, after)
			}
		})
	}
}
