package store

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/geo"
	"repro/internal/index"
)

// Config controls the engine.
type Config struct {
	// Dir is the durability directory; empty means memory-only (no WAL,
	// no snapshots — used by tests and ephemeral pipelines).
	Dir string
	// SyncEveryWrite fsyncs the WAL per mutation.
	SyncEveryWrite bool
	// RTree sizes the spatial index nodes.
	RTree index.RTreeConfig
	// LSH sizes the per-feature-kind visual indexes.
	LSH index.LSHConfig
	// HybridKinds lists feature kinds that additionally maintain a
	// spatial-visual hybrid tree for single-pass hybrid queries.
	HybridKinds []string
	// SnapshotEvery auto-compacts the WAL after this many logged
	// mutations (0 disables auto-compaction).
	SnapshotEvery int
}

// DefaultConfig returns a memory-only configuration with standard index
// parameters.
func DefaultConfig() Config {
	return Config{
		RTree: index.DefaultRTreeConfig(),
		LSH:   index.DefaultLSHConfig(1),
	}
}

// Store is the engine. All exported methods are safe for concurrent use.
type Store struct {
	mu  sync.RWMutex
	cfg Config

	nextID          uint64
	images          map[uint64]*Image
	features        map[uint64]map[string][]float64
	classifications map[uint64]*Classification
	classByName     map[string]uint64
	annotations     map[uint64][]Annotation
	// byLabel[classID][label] -> imageIDs (categorical index).
	byLabel   map[uint64]map[int][]uint64
	keywords  map[uint64][]string
	users     map[uint64]*User
	apiKeys   map[string]*APIKey
	videos    map[uint64]*Video
	campaigns map[uint64]*CampaignRec

	spatial  *index.RTree
	visual   map[string]*index.LSH
	hybrid   map[string]*index.HybridTree
	text     *index.Inverted
	temporal *index.Temporal

	wal    *walWriter
	closed bool
	// walOps counts mutations since the last snapshot (auto-compaction).
	walOps int
	// gen is the current snapshot generation; the live WAL carries the
	// same number, which is how recovery tells a current log from a stale
	// one left by a crash mid-compaction.
	gen uint64
}

// Open creates or recovers a store.
func Open(cfg Config) (*Store, error) {
	if cfg.RTree.MaxEntries == 0 {
		cfg.RTree = index.DefaultRTreeConfig()
	}
	if cfg.LSH.Tables == 0 {
		cfg.LSH = index.DefaultLSHConfig(1)
	}
	s := &Store{cfg: cfg}
	if err := s.resetState(); err != nil {
		return nil, err
	}
	if cfg.Dir != "" {
		snap, err := readSnapshot(cfg.Dir)
		if err != nil {
			return nil, err
		}
		if snap != nil {
			if err := s.loadSnapshot(snap); err != nil {
				return nil, err
			}
			s.gen = snap.Generation
		}
		w, err := recoverWAL(cfg.Dir, s.gen, cfg.SyncEveryWrite, s.applyOp)
		if err != nil {
			return nil, err
		}
		s.wal = w
	}
	return s, nil
}

func (s *Store) resetState() error {
	sp, err := index.NewRTree(s.cfg.RTree)
	if err != nil {
		return err
	}
	s.images = make(map[uint64]*Image)
	s.features = make(map[uint64]map[string][]float64)
	s.classifications = make(map[uint64]*Classification)
	s.classByName = make(map[string]uint64)
	s.annotations = make(map[uint64][]Annotation)
	s.byLabel = make(map[uint64]map[int][]uint64)
	s.keywords = make(map[uint64][]string)
	s.users = make(map[uint64]*User)
	s.apiKeys = make(map[string]*APIKey)
	s.videos = make(map[uint64]*Video)
	s.campaigns = make(map[uint64]*CampaignRec)
	s.spatial = sp
	s.visual = make(map[string]*index.LSH)
	s.hybrid = make(map[string]*index.HybridTree)
	s.text = index.NewInverted()
	s.temporal = index.NewTemporal()
	s.nextID = 0
	return nil
}

// Close flushes and closes the WAL. Further operations fail with
// ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.wal.close()
}

// log appends an op when durability is enabled, auto-compacting when the
// configured threshold is crossed. Callers hold the write lock.
func (s *Store) log(op walOp) error {
	if s.wal == nil {
		return nil
	}
	if err := s.wal.append(op); err != nil {
		return err
	}
	s.walOps++
	if s.cfg.SnapshotEvery > 0 && s.walOps >= s.cfg.SnapshotEvery {
		if err := s.snapshotLocked(); err != nil {
			return fmt.Errorf("store: auto-compaction: %w", err)
		}
	}
	return nil
}

// applyOp replays one WAL op into in-memory state (no re-logging).
func (s *Store) applyOp(op walOp) error {
	switch op.Kind {
	case opAddImage:
		return s.applyImage(op.Image)
	case opAddFeature:
		return s.applyFeature(op.Feature)
	case opAddClass:
		return s.applyClassification(op.Classification)
	case opAddAnnotation:
		return s.applyAnnotation(op.Annotation)
	case opAddKeywords:
		return s.applyKeywords(op.Keyword.ImageID, op.Keyword.Words)
	case opAddUser:
		return s.applyUser(op.User)
	case opAddAPIKey:
		s.apiKeys[op.APIKey.Key] = op.APIKey
		return nil
	case opAddVideo:
		return s.applyVideo(op.Video)
	case opAddCampaign:
		return s.applyCampaign(op.Campaign)
	case opDeleteImage:
		return s.applyDeleteImage(op.DeleteImageID)
	default:
		return fmt.Errorf("%w: unknown WAL op %q", ErrInvalid, op.Kind)
	}
}

func (s *Store) loadSnapshot(st *snapshotState) error {
	if err := s.resetState(); err != nil {
		return err
	}
	for _, img := range st.Images {
		if err := s.applyImage(img); err != nil {
			return err
		}
	}
	for _, c := range st.Classifications {
		if err := s.applyClassification(c); err != nil {
			return err
		}
	}
	for _, f := range st.Features {
		if err := s.applyFeature(f); err != nil {
			return err
		}
	}
	for _, a := range st.Annotations {
		if err := s.applyAnnotation(a); err != nil {
			return err
		}
	}
	for _, k := range st.Keywords {
		if err := s.applyKeywords(k.ImageID, k.Words); err != nil {
			return err
		}
	}
	for _, u := range st.Users {
		if err := s.applyUser(u); err != nil {
			return err
		}
	}
	for _, k := range st.APIKeys {
		s.apiKeys[k.Key] = k
	}
	for _, v := range st.Videos {
		if err := s.applyVideo(v); err != nil {
			return err
		}
	}
	for _, c := range st.Campaigns {
		if err := s.applyCampaign(c); err != nil {
			return err
		}
	}
	s.nextID = st.NextID
	return nil
}

// Snapshot compacts durability state: writes a full snapshot and
// truncates the WAL. No-op for memory-only stores.
func (s *Store) Snapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.snapshotLocked()
}

// snapshotLocked is Snapshot with the write lock already held.
func (s *Store) snapshotLocked() error {
	if s.cfg.Dir == "" {
		return nil
	}
	st := &snapshotState{NextID: s.nextID}
	for _, img := range s.images {
		st.Images = append(st.Images, img)
	}
	sort.Slice(st.Images, func(i, j int) bool { return st.Images[i].ID < st.Images[j].ID })
	for id, kinds := range s.features {
		for kind, vec := range kinds {
			st.Features = append(st.Features, &Feature{ImageID: id, Kind: kind, Vec: vec})
		}
	}
	sort.Slice(st.Features, func(i, j int) bool {
		if st.Features[i].ImageID != st.Features[j].ImageID {
			return st.Features[i].ImageID < st.Features[j].ImageID
		}
		return st.Features[i].Kind < st.Features[j].Kind
	})
	for _, c := range s.classifications {
		st.Classifications = append(st.Classifications, c)
	}
	sort.Slice(st.Classifications, func(i, j int) bool {
		return st.Classifications[i].ID < st.Classifications[j].ID
	})
	var imgIDs []uint64
	for id := range s.annotations {
		imgIDs = append(imgIDs, id)
	}
	sort.Slice(imgIDs, func(i, j int) bool { return imgIDs[i] < imgIDs[j] })
	for _, id := range imgIDs {
		for i := range s.annotations[id] {
			a := s.annotations[id][i]
			st.Annotations = append(st.Annotations, &a)
		}
	}
	imgIDs = imgIDs[:0]
	for id := range s.keywords {
		imgIDs = append(imgIDs, id)
	}
	sort.Slice(imgIDs, func(i, j int) bool { return imgIDs[i] < imgIDs[j] })
	for _, id := range imgIDs {
		st.Keywords = append(st.Keywords, keywordOp{ImageID: id, Words: s.keywords[id]})
	}
	for _, u := range s.users {
		st.Users = append(st.Users, u)
	}
	sort.Slice(st.Users, func(i, j int) bool { return st.Users[i].ID < st.Users[j].ID })
	for _, k := range s.apiKeys {
		st.APIKeys = append(st.APIKeys, k)
	}
	sort.Slice(st.APIKeys, func(i, j int) bool { return st.APIKeys[i].Key < st.APIKeys[j].Key })
	for _, v := range s.videos {
		st.Videos = append(st.Videos, v)
	}
	sort.Slice(st.Videos, func(i, j int) bool { return st.Videos[i].ID < st.Videos[j].ID })
	for _, c := range s.campaigns {
		st.Campaigns = append(st.Campaigns, c)
	}
	sort.Slice(st.Campaigns, func(i, j int) bool { return st.Campaigns[i].ID < st.Campaigns[j].ID })
	st.Generation = s.gen + 1
	if err := writeSnapshot(s.cfg.Dir, st); err != nil {
		return err
	}
	// The snapshot now owns everything the old log held. Retire that log
	// and start one tagged with the new generation; a crash anywhere
	// between the snapshot rename and the new log's rename leaves a
	// stale-generation WAL that recovery discards instead of replaying
	// onto the already-complete snapshot.
	if err := s.wal.close(); err != nil {
		return err
	}
	w, err := createWAL(s.cfg.Dir, st.Generation, nil, s.cfg.SyncEveryWrite)
	if err != nil {
		return err
	}
	s.wal = w
	s.gen = st.Generation
	s.walOps = 0
	return nil
}

// ---- Images ----

// AddImage validates, assigns an ID, derives the scene location, indexes,
// logs, and returns the stored image's ID.
func (s *Store) AddImage(img Image) (uint64, error) {
	if err := img.FOV.Validate(); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	if img.Pixels == nil {
		return 0, fmt.Errorf("%w: image has no pixels", ErrInvalid)
	}
	if img.Origin == "" {
		img.Origin = OriginOriginal
	}
	if img.TimestampUploading.IsZero() {
		img.TimestampUploading = img.TimestampCapturing
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	s.nextID++
	img.ID = s.nextID
	img.Scene = img.FOV.SceneLocation()
	if err := s.applyImage(&img); err != nil {
		return 0, err
	}
	if err := s.log(walOp{Kind: opAddImage, Image: &img}); err != nil {
		return 0, err
	}
	return img.ID, nil
}

func (s *Store) applyImage(img *Image) error {
	if _, dup := s.images[img.ID]; dup {
		return fmt.Errorf("%w: image %d", ErrDuplicate, img.ID)
	}
	if img.ID > s.nextID {
		s.nextID = img.ID
	}
	s.images[img.ID] = img
	if err := s.spatial.Insert(index.SpatialItem{ID: img.ID, Rect: img.Scene}); err != nil {
		return err
	}
	s.temporal.Insert(img.ID, img.TimestampCapturing)
	return nil
}

// GetImage returns a copy of the stored image.
func (s *Store) GetImage(id uint64) (Image, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	img, ok := s.images[id]
	if !ok {
		return Image{}, fmt.Errorf("%w: image %d", ErrNotFound, id)
	}
	return *img, nil
}

// NumImages returns the image count.
func (s *Store) NumImages() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.images)
}

// ImageIDs returns all image IDs in ascending order.
func (s *Store) ImageIDs() []uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]uint64, 0, len(s.images))
	for id := range s.images {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DeleteImage removes an image and all dependent rows and index entries.
func (s *Store) DeleteImage(id uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.applyDeleteImage(id); err != nil {
		return err
	}
	return s.log(walOp{Kind: opDeleteImage, DeleteImageID: id})
}

func (s *Store) applyDeleteImage(id uint64) error {
	img, ok := s.images[id]
	if !ok {
		return fmt.Errorf("%w: image %d", ErrNotFound, id)
	}
	_ = s.spatial.Delete(id, img.Scene)
	s.temporal.Remove(id, img.TimestampCapturing)
	for _, lsh := range s.visual {
		lsh.Remove(id)
	}
	s.text.Remove(id)
	for _, anns := range [][]Annotation{s.annotations[id]} {
		for _, a := range anns {
			s.unlinkLabel(a.ClassificationID, a.Label, id)
		}
	}
	delete(s.annotations, id)
	delete(s.features, id)
	delete(s.keywords, id)
	delete(s.images, id)
	return nil
}

func (s *Store) unlinkLabel(classID uint64, label int, imageID uint64) {
	ids := s.byLabel[classID][label]
	for i, v := range ids {
		if v == imageID {
			s.byLabel[classID][label] = append(ids[:i], ids[i+1:]...)
			return
		}
	}
}

// ---- Features ----

// PutFeature stores (or replaces) one feature vector for an image and
// maintains the visual indexes.
func (s *Store) PutFeature(imageID uint64, kind string, vec []float64) error {
	if kind == "" || len(vec) == 0 {
		return fmt.Errorf("%w: empty feature kind or vector", ErrInvalid)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, ok := s.images[imageID]; !ok {
		return fmt.Errorf("%w: image %d", ErrNotFound, imageID)
	}
	f := &Feature{ImageID: imageID, Kind: kind, Vec: append([]float64(nil), vec...)}
	if err := s.applyFeature(f); err != nil {
		return err
	}
	return s.log(walOp{Kind: opAddFeature, Feature: f})
}

func (s *Store) applyFeature(f *Feature) error {
	kinds := s.features[f.ImageID]
	if kinds == nil {
		kinds = make(map[string][]float64)
		s.features[f.ImageID] = kinds
	}
	kinds[f.Kind] = f.Vec
	lsh, ok := s.visual[f.Kind]
	if !ok {
		cfg := s.cfg.LSH
		var err error
		lsh, err = index.NewLSH(len(f.Vec), cfg)
		if err != nil {
			return err
		}
		s.visual[f.Kind] = lsh
	}
	if err := lsh.Insert(f.ImageID, f.Vec); err != nil {
		return err
	}
	for _, hk := range s.cfg.HybridKinds {
		if hk != f.Kind {
			continue
		}
		ht, ok := s.hybrid[f.Kind]
		if !ok {
			var err error
			ht, err = index.NewHybridTree(len(f.Vec), s.cfg.RTree)
			if err != nil {
				return err
			}
			s.hybrid[f.Kind] = ht
		}
		img, ok := s.images[f.ImageID]
		if !ok {
			return fmt.Errorf("%w: image %d", ErrNotFound, f.ImageID)
		}
		if err := ht.Insert(index.HybridItem{ID: f.ImageID, Rect: img.Scene, Vec: f.Vec}); err != nil {
			return err
		}
	}
	return nil
}

// GetFeature returns the stored vector of one kind for an image.
func (s *Store) GetFeature(imageID uint64, kind string) ([]float64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vec, ok := s.features[imageID][kind]
	if !ok {
		return nil, fmt.Errorf("%w: image %d kind %q", ErrUnknownFeature, imageID, kind)
	}
	return append([]float64(nil), vec...), nil
}

// FeatureKinds returns the kinds stored for an image, sorted.
func (s *Store) FeatureKinds(imageID uint64) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for k := range s.features[imageID] {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ---- Classifications & annotations ----

// CreateClassification registers a labelling scheme; names are unique.
func (s *Store) CreateClassification(name string, labels []string) (uint64, error) {
	if name == "" || len(labels) == 0 {
		return 0, fmt.Errorf("%w: classification needs a name and labels", ErrInvalid)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	if _, dup := s.classByName[name]; dup {
		return 0, fmt.Errorf("%w: classification %q", ErrDuplicate, name)
	}
	s.nextID++
	c := &Classification{ID: s.nextID, Name: name, Labels: append([]string(nil), labels...)}
	if err := s.applyClassification(c); err != nil {
		return 0, err
	}
	if err := s.log(walOp{Kind: opAddClass, Classification: c}); err != nil {
		return 0, err
	}
	return c.ID, nil
}

func (s *Store) applyClassification(c *Classification) error {
	if _, dup := s.classifications[c.ID]; dup {
		return fmt.Errorf("%w: classification %d", ErrDuplicate, c.ID)
	}
	if c.ID > s.nextID {
		s.nextID = c.ID
	}
	s.classifications[c.ID] = c
	s.classByName[c.Name] = c.ID
	s.byLabel[c.ID] = make(map[int][]uint64)
	return nil
}

// GetClassification looks a scheme up by ID.
func (s *Store) GetClassification(id uint64) (Classification, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.classifications[id]
	if !ok {
		return Classification{}, fmt.Errorf("%w: classification %d", ErrNotFound, id)
	}
	return *c, nil
}

// ClassificationByName looks a scheme up by name.
func (s *Store) ClassificationByName(name string) (Classification, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	id, ok := s.classByName[name]
	if !ok {
		return Classification{}, fmt.Errorf("%w: classification %q", ErrNotFound, name)
	}
	return *s.classifications[id], nil
}

// Classifications lists all schemes sorted by ID.
func (s *Store) Classifications() []Classification {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Classification, 0, len(s.classifications))
	for _, c := range s.classifications {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Annotate attaches a label to an image under a classification scheme.
func (s *Store) Annotate(a Annotation) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, ok := s.images[a.ImageID]; !ok {
		return fmt.Errorf("%w: image %d", ErrNotFound, a.ImageID)
	}
	c, ok := s.classifications[a.ClassificationID]
	if !ok {
		return fmt.Errorf("%w: classification %d", ErrNotFound, a.ClassificationID)
	}
	if a.Label < 0 || a.Label >= len(c.Labels) {
		return fmt.Errorf("%w: label %d of %q", ErrUnknownLabel, a.Label, c.Name)
	}
	if a.Source == "" {
		a.Source = SourceMachine
	}
	if err := s.applyAnnotation(&a); err != nil {
		return err
	}
	return s.log(walOp{Kind: opAddAnnotation, Annotation: &a})
}

func (s *Store) applyAnnotation(a *Annotation) error {
	s.annotations[a.ImageID] = append(s.annotations[a.ImageID], *a)
	byLabel := s.byLabel[a.ClassificationID]
	if byLabel == nil {
		byLabel = make(map[int][]uint64)
		s.byLabel[a.ClassificationID] = byLabel
	}
	byLabel[a.Label] = append(byLabel[a.Label], a.ImageID)
	return nil
}

// AnnotationsFor returns all annotations on an image.
func (s *Store) AnnotationsFor(imageID uint64) []Annotation {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]Annotation(nil), s.annotations[imageID]...)
}

// ImagesByLabel returns image IDs annotated with (classificationID,
// label), ascending.
func (s *Store) ImagesByLabel(classificationID uint64, label int) []uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := append([]uint64(nil), s.byLabel[classificationID][label]...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// ---- Keywords ----

// AddKeywords attaches manual keywords to an image and indexes them.
func (s *Store) AddKeywords(imageID uint64, words []string) error {
	if len(words) == 0 {
		return fmt.Errorf("%w: no keywords", ErrInvalid)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, ok := s.images[imageID]; !ok {
		return fmt.Errorf("%w: image %d", ErrNotFound, imageID)
	}
	if err := s.applyKeywords(imageID, words); err != nil {
		return err
	}
	return s.log(walOp{Kind: opAddKeywords, Keyword: &keywordOp{ImageID: imageID, Words: words}})
}

func (s *Store) applyKeywords(imageID uint64, words []string) error {
	s.keywords[imageID] = append(s.keywords[imageID], words...)
	s.text.Add(imageID, words)
	return nil
}

// KeywordsFor returns the keywords attached to an image.
func (s *Store) KeywordsFor(imageID uint64) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]string(nil), s.keywords[imageID]...)
}

// ---- Users & API keys ----

// CreateUser registers a participant.
func (s *Store) CreateUser(name, role string) (uint64, error) {
	if name == "" {
		return 0, fmt.Errorf("%w: user needs a name", ErrInvalid)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	s.nextID++
	u := &User{ID: s.nextID, Name: name, Role: role}
	if err := s.applyUser(u); err != nil {
		return 0, err
	}
	if err := s.log(walOp{Kind: opAddUser, User: u}); err != nil {
		return 0, err
	}
	return u.ID, nil
}

func (s *Store) applyUser(u *User) error {
	if _, dup := s.users[u.ID]; dup {
		return fmt.Errorf("%w: user %d", ErrDuplicate, u.ID)
	}
	if u.ID > s.nextID {
		s.nextID = u.ID
	}
	s.users[u.ID] = u
	return nil
}

// GetUser returns a user by ID.
func (s *Store) GetUser(id uint64) (User, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	u, ok := s.users[id]
	if !ok {
		return User{}, fmt.Errorf("%w: user %d", ErrNotFound, id)
	}
	return *u, nil
}

// IssueAPIKey mints a random key for the user.
func (s *Store) IssueAPIKey(userID uint64, now time.Time) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return "", ErrClosed
	}
	if _, ok := s.users[userID]; !ok {
		return "", fmt.Errorf("%w: user %d", ErrNotFound, userID)
	}
	buf := make([]byte, 16)
	if _, err := rand.Read(buf); err != nil {
		return "", fmt.Errorf("store: generating API key: %w", err)
	}
	k := &APIKey{Key: hex.EncodeToString(buf), UserID: userID, Issued: now}
	s.apiKeys[k.Key] = k
	if err := s.log(walOp{Kind: opAddAPIKey, APIKey: k}); err != nil {
		return "", err
	}
	return k.Key, nil
}

// Authenticate resolves an API key to its user.
func (s *Store) Authenticate(key string) (User, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	k, ok := s.apiKeys[key]
	if !ok {
		return User{}, fmt.Errorf("%w: api key", ErrNotFound)
	}
	u, ok := s.users[k.UserID]
	if !ok {
		return User{}, fmt.Errorf("%w: user %d", ErrNotFound, k.UserID)
	}
	return *u, nil
}

// ---- Query primitives (composed by internal/query) ----

// SearchScene returns image IDs whose scene MBR intersects r.
func (s *Store) SearchScene(r geo.Rect) []uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.spatial.SearchRect(r)
}

// SearchNearest returns up to k image IDs whose scenes are closest to p.
func (s *Store) SearchNearest(p geo.Point, k int) []uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.spatial.NearestK(p, k)
}

// SearchVisual returns up to k approximate visual neighbours of vec under
// the given feature kind.
func (s *Store) SearchVisual(kind string, vec []float64, k int) ([]index.Match, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	lsh, ok := s.visual[kind]
	if !ok {
		return nil, fmt.Errorf("%w: no index for feature kind %q", ErrNotFound, kind)
	}
	return lsh.TopK(vec, k)
}

// SearchVisualRadius returns visual matches within distance r.
func (s *Store) SearchVisualRadius(kind string, vec []float64, r float64) ([]index.Match, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	lsh, ok := s.visual[kind]
	if !ok {
		return nil, fmt.Errorf("%w: no index for feature kind %q", ErrNotFound, kind)
	}
	return lsh.WithinRadius(vec, r)
}

// SearchVisualExact linearly re-ranks all vectors of a kind (baseline).
func (s *Store) SearchVisualExact(kind string, vec []float64, k int) ([]index.Match, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	lsh, ok := s.visual[kind]
	if !ok {
		return nil, fmt.Errorf("%w: no index for feature kind %q", ErrNotFound, kind)
	}
	return lsh.ExactTopK(vec, k)
}

// SearchHybrid runs a single-pass spatial-visual query when a hybrid tree
// is maintained for the kind; ok=false means the caller must fall back to
// the two-phase plan.
func (s *Store) SearchHybrid(kind string, r geo.Rect, vec []float64, k int) ([]index.Match, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ht, ok := s.hybrid[kind]
	if !ok {
		return nil, false, nil
	}
	ms, err := ht.SearchSpatialVisual(r, vec, k)
	return ms, true, err
}

// SearchText returns keyword matches (disjunctive, TF-IDF ranked).
func (s *Store) SearchText(terms []string) []index.Match {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.text.SearchAny(terms)
}

// SearchTextAll returns conjunctive keyword matches.
func (s *Store) SearchTextAll(terms []string) []index.Match {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.text.SearchAll(terms)
}

// SearchTime returns image IDs captured in [from, to].
func (s *Store) SearchTime(from, to time.Time) []uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.temporal.Range(from, to)
}
