package store

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geo"
	"repro/internal/index"
)

// Engine selects the persistence engine for directory-backed stores.
type Engine string

const (
	// EngineSegment (the default) persists incrementally: memtable +
	// per-generation WAL + sorted immutable segments + background
	// compaction. See engine.go.
	EngineSegment Engine = "segment"
	// EngineSnapshot is the legacy full-snapshot engine: one snapshot.gob
	// rewritten under all six locks at every compaction.
	EngineSnapshot Engine = "snapshot"
)

// ParseEngine parses a -engine flag value ("" means the default).
func ParseEngine(v string) (Engine, error) {
	switch Engine(v) {
	case "", EngineSegment:
		return EngineSegment, nil
	case EngineSnapshot:
		return EngineSnapshot, nil
	default:
		return "", fmt.Errorf("%w: unknown storage engine %q (want segment or snapshot)", ErrInvalid, v)
	}
}

// WALSyncMode selects how aggressively the WAL committer makes batches
// durable. The zero value is SyncBatch.
type WALSyncMode int

const (
	// SyncBatch issues one write(2) per group-commit batch and leaves the
	// fsync to the OS — a crash can lose the OS write-back window, a
	// process panic loses nothing.
	SyncBatch WALSyncMode = iota
	// SyncImmediate fsyncs every batch before acknowledging its
	// mutations (the SyncEveryWrite contract).
	SyncImmediate
	// SyncNone buffers acknowledged batches in memory and writes them
	// out only when 256 KiB accumulate (or on rotation/close) — a crash
	// can lose the buffered window.
	SyncNone
)

func (m WALSyncMode) String() string {
	switch m {
	case SyncImmediate:
		return "immediate"
	case SyncNone:
		return "none"
	default:
		return "batch"
	}
}

// ParseWALSyncMode parses a -wal-sync flag value ("" means the default).
func ParseWALSyncMode(v string) (WALSyncMode, error) {
	switch v {
	case "", "batch":
		return SyncBatch, nil
	case "immediate":
		return SyncImmediate, nil
	case "none":
		return SyncNone, nil
	default:
		return 0, fmt.Errorf("%w: unknown WAL sync mode %q (want batch, immediate, or none)", ErrInvalid, v)
	}
}

// Defaults for the segment engine's tuning knobs.
const (
	// DefaultFlushThreshold is the memtable size (in WAL bytes) that
	// triggers a background flush.
	DefaultFlushThreshold = 8 << 20
	// DefaultCompactSegments is the live segment count that triggers a
	// background compaction.
	DefaultCompactSegments = 6
	// memHardMult and memHardFloor cap the memtable at
	// max(memHardMult × FlushThreshold, memHardFloor) bytes. When
	// sustained ingest outruns flush bandwidth the memtable would grow
	// without bound — each flush then serialises a bigger window, which
	// takes longer, which grows the next window (and its replay-on-crash
	// cost) further. At the cap, writers block after their commit until
	// the next freeze-swap empties the memtable: ingest degrades to flush
	// bandwidth instead of collapsing, and replay work stays bounded.
	// The floor keeps the cap several flush cycles wide under a small
	// FlushThreshold — a cap only one cycle deep would park writers for
	// the remainder of every in-flight flush, turning the throttle itself
	// into the stall it exists to prevent.
	memHardMult  = 8
	memHardFloor = 4 << 20
)

// Config controls the engine.
type Config struct {
	// Dir is the durability directory; empty means memory-only (no WAL,
	// no snapshots — used by tests and ephemeral pipelines).
	Dir string
	// Engine selects the persistence engine ("" means EngineSegment).
	// EngineSnapshot refuses to open a segment-layout directory; the
	// segment engine migrates a legacy snapshot layout in place.
	Engine Engine
	// WALSync selects batch durability (default SyncBatch). Setting
	// SyncEveryWrite upgrades SyncBatch to SyncImmediate for
	// compatibility.
	WALSync WALSyncMode
	// SyncEveryWrite makes every mutation block until its WAL batch is
	// fsynced (the committer coalesces concurrent mutations into one
	// fsync per batch). Equivalent to WALSync = SyncImmediate.
	SyncEveryWrite bool
	// RTree sizes the spatial index nodes.
	RTree index.RTreeConfig
	// LSH sizes the per-feature-kind visual indexes.
	LSH index.LSHConfig
	// HybridKinds lists feature kinds that additionally maintain a
	// spatial-visual hybrid tree for single-pass hybrid queries.
	HybridKinds []string
	// SnapshotEvery auto-compacts the WAL after this many logged
	// mutations (0 disables auto-compaction). Snapshot engine only; the
	// segment engine flushes by bytes, not op count.
	SnapshotEvery int
	// FlushThreshold is the memtable size in WAL bytes that triggers a
	// background segment flush (0 means DefaultFlushThreshold). Segment
	// engine only.
	FlushThreshold int64
	// CompactSegments is the live segment count that triggers background
	// compaction (0 means DefaultCompactSegments). Segment engine only.
	CompactSegments int
}

// DefaultConfig returns a memory-only configuration with standard index
// parameters.
func DefaultConfig() Config {
	return Config{
		RTree: index.DefaultRTreeConfig(),
		LSH:   index.DefaultLSHConfig(1),
	}
}

// Store is the engine. All exported methods are safe for concurrent use.
//
// Concurrency architecture: instead of one global RWMutex, state is
// partitioned into subsystems, each guarded by its own RWMutex, so query
// traffic over one index never contends with ingest touching another.
//
// Lock map (what each lock guards):
//
//	catalogMu — classifications, classByName, users, apiKeys, videos,
//	            campaigns
//	imagesMu  — images, ids (the sorted id slice)
//	featMu    — features, visual LSH indexes, hybrid trees
//	annMu     — annotations, byLabel
//	kwMu      — keywords, text inverted index
//	geoMu     — spatial R-tree, temporal index
//
// Lock ordering discipline: a goroutine that needs several locks MUST
// acquire them in the order listed above (catalogMu first, geoMu last)
// and may release them in any order. Skipping locks is fine; acquiring
// out of order is a deadlock. Snapshot/Close take all six in order.
//
// nextID and closed are atomics so ID allocation and shutdown checks
// never serialise on any subsystem. WAL durability is handled by the
// group-commit committer (committer.go): mutations apply under their
// subsystem locks, enqueue their pre-encoded frame while still holding
// them (pinning log order to apply order), then release the locks and
// block until the committer reports the batch durable.
type Store struct {
	cfg Config

	catalogMu sync.RWMutex
	imagesMu  sync.RWMutex
	featMu    sync.RWMutex
	annMu     sync.RWMutex
	kwMu      sync.RWMutex
	geoMu     sync.RWMutex

	nextID atomic.Uint64
	closed atomic.Bool
	// mutGen counts applied data-plane mutations (images, features,
	// annotations, keywords, classifications, videos, deletes). Readers
	// use it as a cache-invalidation stamp: a query result computed at
	// generation g is safe to serve only while Generation() == g. Bumped
	// under the relevant subsystem locks, read lock-free.
	mutGen atomic.Uint64

	//tvdp:guardedby imagesMu
	images map[uint64]*Image
	// ids mirrors the images map keys in ascending order, maintained
	// incrementally on add/delete so ImageIDs never re-sorts.
	//tvdp:guardedby imagesMu
	ids []uint64
	//tvdp:guardedby featMu
	features map[uint64]map[string][]float64
	//tvdp:guardedby catalogMu
	classifications map[uint64]*Classification
	//tvdp:guardedby catalogMu
	classByName map[string]uint64
	//tvdp:guardedby annMu
	annotations map[uint64][]Annotation
	// byLabel[classID][label] -> imageIDs (categorical index).
	//tvdp:guardedby annMu
	byLabel map[uint64]map[int][]uint64
	//tvdp:guardedby kwMu
	keywords map[uint64][]string
	//tvdp:guardedby catalogMu
	users map[uint64]*User
	//tvdp:guardedby catalogMu
	apiKeys map[string]*APIKey
	//tvdp:guardedby catalogMu
	videos map[uint64]*Video
	//tvdp:guardedby catalogMu
	campaigns map[uint64]*CampaignRec

	//tvdp:guardedby geoMu
	spatial *index.RTree
	//tvdp:guardedby featMu
	visual map[string]*index.LSH
	//tvdp:guardedby featMu
	hybrid map[string]*index.HybridTree
	//tvdp:guardedby kwMu
	text *index.Inverted
	//tvdp:guardedby geoMu
	temporal *index.Temporal

	// com is the group-commit WAL committer (nil for memory-only stores).
	com *walCommitter
	// walOps counts committed mutations since the last snapshot
	// (auto-compaction trigger); compactMu ensures one compaction runs at
	// a time and guards walOps' check-and-reset cycle (the increment in
	// awaitCommit is a lock-free atomic add, excused inline). Snapshot
	// engine only.
	//tvdp:guardedby compactMu
	walOps    atomic.Int64
	compactMu sync.Mutex
	// gen is the current WAL generation. Snapshot engine: the snapshot
	// generation, with the live WAL carrying the same number (written only
	// at Open and under all six locks in snapshotLocked — geoMu, the last
	// lock of the quiesce, is the annotation's witness). Segment engine:
	// the live wal-%06d.log number (written at Open and under flushMu +
	// all six locks in flushOnce).
	//tvdp:guardedby flushMu|geoMu
	gen uint64

	// Segment engine state (nil/zero under the snapshot engine): mem is
	// the current memtable window (fields written under their subsystem
	// locks — see memtable.go), memBytes its WAL-byte footprint (the
	// flush trigger), eng the background flush/compaction worker.
	mem      *memtable
	memBytes atomic.Int64
	eng      *segEngine
	// memFreed (on memThrottleMu) wakes writers blocked at the memtable
	// hard cap (memHardMult × FlushThreshold); the freeze-swap broadcasts
	// it after zeroing memBytes, as does Close.
	memThrottleMu sync.Mutex
	//tvdp:guardedby memThrottleMu
	memFreed *sync.Cond
	// snaps counts completed full snapshots (snapshot engine
	// observability).
	snaps atomic.Uint64
}

// Open creates or recovers a store.
//
//tvdp:serial construction and recovery run before the store is shared
func Open(cfg Config) (*Store, error) {
	if cfg.RTree.MaxEntries == 0 {
		cfg.RTree = index.DefaultRTreeConfig()
	}
	if cfg.LSH.Tables == 0 {
		cfg.LSH = index.DefaultLSHConfig(1)
	}
	if cfg.Engine == "" {
		cfg.Engine = EngineSegment
	}
	if cfg.Engine != EngineSegment && cfg.Engine != EngineSnapshot {
		return nil, fmt.Errorf("%w: unknown storage engine %q", ErrInvalid, cfg.Engine)
	}
	if cfg.SyncEveryWrite && cfg.WALSync == SyncBatch {
		cfg.WALSync = SyncImmediate
	}
	if cfg.FlushThreshold <= 0 {
		cfg.FlushThreshold = DefaultFlushThreshold
	}
	if cfg.CompactSegments < 2 {
		cfg.CompactSegments = DefaultCompactSegments
	}
	s := &Store{cfg: cfg}
	s.memFreed = sync.NewCond(&s.memThrottleMu)
	if err := s.resetState(); err != nil {
		return nil, err
	}
	if cfg.Dir == "" {
		return s, nil
	}
	if cfg.Engine == EngineSegment {
		if err := s.openSegment(); err != nil {
			return nil, err
		}
		return s, nil
	}
	// Legacy snapshot engine. Refuse a segment-layout directory outright:
	// quietly ignoring the MANIFEST would serve a stale prefix of the
	// data and then corrupt the layout on the first snapshot.
	if man, err := readManifest(cfg.Dir); err != nil {
		return nil, err
	} else if man != nil {
		return nil, fmt.Errorf("store: %s holds a segment-engine layout (MANIFEST present); open it with Engine=segment", cfg.Dir)
	}
	snap, err := readSnapshot(cfg.Dir)
	if err != nil {
		return nil, err
	}
	if snap != nil {
		if err := s.loadSnapshot(snap); err != nil {
			return nil, err
		}
		s.gen = snap.Generation
	}
	w, err := recoverWAL(cfg.Dir, s.gen, cfg.WALSync, s.applyOp)
	if err != nil {
		return nil, err
	}
	s.com = newWALCommitter(w, cfg.WALSync)
	return s, nil
}

//tvdp:serial called from Open and single-threaded recovery only
func (s *Store) resetState() error {
	sp, err := index.NewRTree(s.cfg.RTree)
	if err != nil {
		return err
	}
	s.images = make(map[uint64]*Image)
	s.ids = nil
	s.features = make(map[uint64]map[string][]float64)
	s.classifications = make(map[uint64]*Classification)
	s.classByName = make(map[string]uint64)
	s.annotations = make(map[uint64][]Annotation)
	s.byLabel = make(map[uint64]map[int][]uint64)
	s.keywords = make(map[uint64][]string)
	s.users = make(map[uint64]*User)
	s.apiKeys = make(map[string]*APIKey)
	s.videos = make(map[uint64]*Video)
	s.campaigns = make(map[uint64]*CampaignRec)
	s.spatial = sp
	s.visual = make(map[string]*index.LSH)
	s.hybrid = make(map[string]*index.HybridTree)
	s.text = index.NewInverted()
	s.temporal = index.NewTemporal()
	s.nextID.Store(0)
	return nil
}

// lockAll / unlockAll take or release every subsystem lock in the
// documented order (used by Snapshot and Close to quiesce the store).
func (s *Store) lockAll() {
	s.catalogMu.Lock()
	s.imagesMu.Lock()
	s.featMu.Lock()
	s.annMu.Lock()
	s.kwMu.Lock()
	s.geoMu.Lock()
}

func (s *Store) unlockAll() {
	s.geoMu.Unlock()
	s.kwMu.Unlock()
	s.annMu.Unlock()
	s.featMu.Unlock()
	s.imagesMu.Unlock()
	s.catalogMu.Unlock()
}

// bumpNextID raises the allocator to at least id (replay/snapshot load).
func (s *Store) bumpNextID(id uint64) {
	for {
		cur := s.nextID.Load()
		if id <= cur || s.nextID.CompareAndSwap(cur, id) {
			return
		}
	}
}

// Close flushes and closes the WAL. Further mutations fail with
// ErrClosed; reads keep working against the in-memory state. Any
// background flush/compaction failure recorded since Open is surfaced
// here.
func (s *Store) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	// Release writers parked at the memtable hard cap, then quiesce:
	// in-flight mutations finish applying and enqueueing before the
	// committer drains and closes the log.
	s.wakeThrottled()
	s.lockAll()
	s.unlockAll()
	var errs []error
	if s.eng != nil {
		// Stop the flush/compaction worker before closing the committer:
		// a mid-flight flush must not race the final log close.
		s.eng.stopWorker()
		if err := s.eng.takeErr(); err != nil {
			errs = append(errs, err)
		}
	}
	if s.com != nil {
		if err := s.com.close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// encode pre-serialises an op into a WAL frame outside any lock; nil
// frame means durability is disabled.
func (s *Store) encode(op walOp) ([]byte, error) {
	if s.com == nil {
		return nil, nil
	}
	frame, err := encodeFrame(op)
	if err != nil {
		return nil, fmt.Errorf("store: encoding WAL op %s: %w", op.Kind, err)
	}
	return frame, nil
}

// enqueue hands a frame to the committer. Callers hold the write lock of
// every subsystem the op touched, which pins log order to apply order.
//
//tvdp:requires catalogMu|imagesMu|featMu|annMu|kwMu|geoMu
func (s *Store) enqueue(frame []byte) <-chan error { return s.enqueueN(frame, 1) }

//tvdp:requires catalogMu|imagesMu|featMu|annMu|kwMu|geoMu
func (s *Store) enqueueN(frame []byte, ops uint64) <-chan error {
	if s.com == nil || frame == nil {
		return nil
	}
	if s.eng != nil {
		// Callers hold their subsystem write lock here, the same lock
		// their memtable record was made under, so the byte count can
		// never run ahead of the records it measures.
		s.memBytes.Add(int64(len(frame)))
	}
	return s.com.enqueue(frame, ops)
}

// awaitCommit blocks until the batch containing the caller's frame is
// durable, then nudges the persistence engine: a background flush kick
// for the segment engine, inline auto-compaction for the snapshot
// engine. Called with no locks held.
func (s *Store) awaitCommit(wait <-chan error, ops int) error {
	if wait == nil {
		return nil
	}
	if err := <-wait; err != nil {
		return err
	}
	if s.eng != nil {
		if s.memBytes.Load() >= s.cfg.FlushThreshold {
			s.eng.kick()
		}
		s.throttleMem()
		return nil
	}
	//tvdp:nolint guardedby the increment is a lock-free atomic add; compactMu guards only the check-and-reset cycle (maybeCompact, snapshotLocked)
	if s.cfg.SnapshotEvery > 0 && int(s.walOps.Add(int64(ops))) >= s.cfg.SnapshotEvery {
		return s.maybeCompact()
	}
	return nil
}

// throttleMem blocks the calling writer while the memtable sits at or
// above the hard cap (memHardMult × FlushThreshold). Called with no
// locks held, after the caller's own commit — the mutation is applied
// and durable; only the *return* is delayed, so acked durability and
// apply order are untouched. The wait ends at the next freeze-swap
// (memBytes drops to 0), on Close, or if the background engine has
// recorded an error (no future flush is guaranteed then — better to let
// writers run uncapped than to strand them on a condvar).
func (s *Store) throttleMem() {
	hard := s.cfg.FlushThreshold * memHardMult
	if hard < memHardFloor {
		hard = memHardFloor
	}
	if s.memBytes.Load() < hard {
		return
	}
	s.memThrottleMu.Lock()
	for s.memBytes.Load() >= hard && !s.closed.Load() && !s.eng.sick() {
		s.eng.kick()
		s.memFreed.Wait()
	}
	s.memThrottleMu.Unlock()
}

// wakeThrottled releases every writer blocked in throttleMem. The
// lock/unlock pair orders the wakeup against a waiter between its cap
// check and its Wait.
func (s *Store) wakeThrottled() {
	s.memThrottleMu.Lock()
	s.memFreed.Broadcast()
	s.memThrottleMu.Unlock()
}

// maybeCompact runs at most one auto-compaction at a time; concurrent
// crossers skip rather than queueing up behind each other. It calls
// snapshotNow directly (not Snapshot) because it already holds
// compactMu — re-entering Snapshot would self-deadlock.
func (s *Store) maybeCompact() error {
	if !s.compactMu.TryLock() {
		return nil
	}
	defer s.compactMu.Unlock()
	if int(s.walOps.Load()) < s.cfg.SnapshotEvery {
		return nil // a racing compaction already reset the counter
	}
	if err := s.snapshotNow(); err != nil {
		return fmt.Errorf("store: auto-compaction: %w", err)
	}
	return nil
}

// applyOp replays one WAL op into in-memory state (no re-logging). Used
// by recovery only, before the store is shared.
//
//tvdp:serial WAL replay runs single-threaded before the store is shared
func (s *Store) applyOp(op walOp) error {
	switch op.Kind {
	case opAddImage:
		return s.applyImage(op.Image)
	case opAddFeature:
		return s.applyFeature(op.Feature)
	case opAddClass:
		return s.applyClassification(op.Classification)
	case opAddAnnotation:
		return s.applyAnnotation(op.Annotation)
	case opAddKeywords:
		return s.applyKeywords(op.Keyword.ImageID, op.Keyword.Words)
	case opAddUser:
		return s.applyUser(op.User)
	case opAddAPIKey:
		s.applyAPIKey(op.APIKey)
		return nil
	case opAddVideo:
		return s.applyVideo(op.Video)
	case opAddCampaign:
		return s.applyCampaign(op.Campaign)
	case opDeleteImage:
		return s.applyDeleteImage(op.DeleteImageID)
	default:
		return fmt.Errorf("%w: unknown WAL op %q", ErrInvalid, op.Kind)
	}
}

//tvdp:serial snapshot load runs single-threaded before the store is shared
func (s *Store) loadSnapshot(st *snapshotState) error {
	if err := s.resetState(); err != nil {
		return err
	}
	for _, img := range st.Images {
		if err := s.applyImage(img); err != nil {
			return err
		}
	}
	for _, c := range st.Classifications {
		if err := s.applyClassification(c); err != nil {
			return err
		}
	}
	for _, f := range st.Features {
		if err := s.applyFeature(f); err != nil {
			return err
		}
	}
	for _, a := range st.Annotations {
		if err := s.applyAnnotation(a); err != nil {
			return err
		}
	}
	for _, k := range st.Keywords {
		if err := s.applyKeywords(k.ImageID, k.Words); err != nil {
			return err
		}
	}
	for _, u := range st.Users {
		if err := s.applyUser(u); err != nil {
			return err
		}
	}
	for _, k := range st.APIKeys {
		s.applyAPIKey(k)
	}
	for _, v := range st.Videos {
		if err := s.applyVideo(v); err != nil {
			return err
		}
	}
	for _, c := range st.Campaigns {
		if err := s.applyCampaign(c); err != nil {
			return err
		}
	}
	s.nextID.Store(st.NextID)
	return nil
}

// Snapshot compacts durability state. Snapshot engine: writes a full
// snapshot and truncates the WAL under all six locks. Segment engine:
// forces a memtable flush (the freeze-swap holds the locks only
// briefly; segment and manifest writes happen off-lock). No-op for
// memory-only stores.
func (s *Store) Snapshot() error {
	if s.closed.Load() {
		return ErrClosed
	}
	if s.eng != nil {
		return s.eng.flushOnce()
	}
	// compactMu serialises explicit snapshots against auto-compaction and
	// guards the walOps check-and-reset cycle; it is always taken before
	// any subsystem lock.
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	return s.snapshotNow()
}

// snapshotNow quiesces the store and writes a full snapshot. Snapshot
// engine only.
//
//tvdp:requires compactMu
func (s *Store) snapshotNow() error {
	s.lockAll()
	defer s.unlockAll()
	if s.closed.Load() {
		return ErrClosed
	}
	//tvdp:nolint lockorder snapshot fsync under all six locks is the design: compaction must quiesce the store (see DESIGN.md "Durability")
	return s.snapshotLocked()
}

// snapshotLocked is snapshotNow with every subsystem lock already held.
//
//tvdp:requires compactMu,catalogMu,imagesMu,featMu,annMu,kwMu,geoMu
func (s *Store) snapshotLocked() error {
	if s.cfg.Dir == "" {
		return nil
	}
	st := &snapshotState{NextID: s.nextID.Load()}
	for _, id := range s.ids {
		st.Images = append(st.Images, s.images[id])
	}
	for id, kinds := range s.features {
		for kind, vec := range kinds {
			st.Features = append(st.Features, &Feature{ImageID: id, Kind: kind, Vec: vec})
		}
	}
	sort.Slice(st.Features, func(i, j int) bool {
		if st.Features[i].ImageID != st.Features[j].ImageID {
			return st.Features[i].ImageID < st.Features[j].ImageID
		}
		return st.Features[i].Kind < st.Features[j].Kind
	})
	for _, c := range s.classifications {
		st.Classifications = append(st.Classifications, c)
	}
	sort.Slice(st.Classifications, func(i, j int) bool {
		return st.Classifications[i].ID < st.Classifications[j].ID
	})
	var imgIDs []uint64
	for id := range s.annotations {
		imgIDs = append(imgIDs, id)
	}
	sort.Slice(imgIDs, func(i, j int) bool { return imgIDs[i] < imgIDs[j] })
	for _, id := range imgIDs {
		for i := range s.annotations[id] {
			a := s.annotations[id][i]
			st.Annotations = append(st.Annotations, &a)
		}
	}
	imgIDs = imgIDs[:0]
	for id := range s.keywords {
		imgIDs = append(imgIDs, id)
	}
	sort.Slice(imgIDs, func(i, j int) bool { return imgIDs[i] < imgIDs[j] })
	for _, id := range imgIDs {
		st.Keywords = append(st.Keywords, keywordOp{ImageID: id, Words: s.keywords[id]})
	}
	for _, u := range s.users {
		st.Users = append(st.Users, u)
	}
	sort.Slice(st.Users, func(i, j int) bool { return st.Users[i].ID < st.Users[j].ID })
	for _, k := range s.apiKeys {
		st.APIKeys = append(st.APIKeys, k)
	}
	sort.Slice(st.APIKeys, func(i, j int) bool { return st.APIKeys[i].Key < st.APIKeys[j].Key })
	for _, v := range s.videos {
		st.Videos = append(st.Videos, v)
	}
	sort.Slice(st.Videos, func(i, j int) bool { return st.Videos[i].ID < st.Videos[j].ID })
	for _, c := range s.campaigns {
		st.Campaigns = append(st.Campaigns, c)
	}
	sort.Slice(st.Campaigns, func(i, j int) bool { return st.Campaigns[i].ID < st.Campaigns[j].ID })
	st.Generation = s.gen + 1
	if err := writeSnapshot(s.cfg.Dir, st); err != nil {
		return err
	}
	// The snapshot now owns everything the old log held (including any
	// applied-but-unflushed frames, which rotate drains into the retiring
	// log first). Start a log tagged with the new generation; a crash
	// anywhere between the snapshot rename and the new log's rename
	// leaves a stale-generation WAL that recovery discards instead of
	// replaying onto the already-complete snapshot.
	if err := s.com.rotate(func() (*walWriter, error) {
		return createWAL(s.cfg.Dir, walFile, st.Generation, nil, s.cfg.WALSync)
	}); err != nil {
		return err
	}
	s.gen = st.Generation
	s.walOps.Store(0)
	s.snaps.Add(1)
	return nil
}

// ---- Images ----

// AddImage validates, assigns an ID, derives the scene location, indexes,
// logs, and returns the stored image's ID. A caller that pre-assigned
// img.ID (the shard coordinator, which owns a global allocator) keeps it;
// img.ID == 0 allocates locally.
func (s *Store) AddImage(img Image) (uint64, error) {
	if err := img.FOV.Validate(); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	if img.Pixels == nil {
		return 0, fmt.Errorf("%w: image has no pixels", ErrInvalid)
	}
	if img.Origin == "" {
		img.Origin = OriginOriginal
	}
	if img.TimestampUploading.IsZero() {
		img.TimestampUploading = img.TimestampCapturing
	}
	if s.closed.Load() {
		return 0, ErrClosed
	}
	if img.ID == 0 {
		img.ID = s.nextID.Add(1)
	}
	img.Scene = img.FOV.SceneLocation()
	frame, err := s.encode(walOp{Kind: opAddImage, Image: &img})
	if err != nil {
		return 0, err
	}
	s.imagesMu.Lock()
	s.geoMu.Lock()
	unlock := func() { s.geoMu.Unlock(); s.imagesMu.Unlock() }
	if s.closed.Load() {
		unlock()
		return 0, ErrClosed
	}
	if err := s.applyImage(&img); err != nil {
		unlock()
		return 0, err
	}
	wait := s.enqueue(frame)
	unlock()
	if err := s.awaitCommit(wait, 1); err != nil {
		return 0, err
	}
	return img.ID, nil
}

// applyImage inserts one image row plus its spatial/temporal index
// entries. Callers hold imagesMu and geoMu (or are single-threaded
// recovery, which is exempted at the call site by //tvdp:serial).
//
//tvdp:requires imagesMu,geoMu
func (s *Store) applyImage(img *Image) error {
	if _, dup := s.images[img.ID]; dup {
		return fmt.Errorf("%w: image %d", ErrDuplicate, img.ID)
	}
	s.mutGen.Add(1)
	s.bumpNextID(img.ID)
	s.images[img.ID] = img
	s.idsInsert(img.ID)
	if err := s.spatial.Insert(index.SpatialItem{ID: img.ID, Rect: img.Scene}); err != nil {
		return err
	}
	s.temporal.Insert(img.ID, img.TimestampCapturing)
	if s.mem != nil {
		s.mem.addImage(img)
	}
	return nil
}

// idsInsert keeps the sorted id slice sorted on insert. Appends are O(1)
// for the common monotonically-increasing case; out-of-order ids (WAL
// replay of concurrent adds) binary-search their slot.
//
//tvdp:requires imagesMu
func (s *Store) idsInsert(id uint64) {
	n := len(s.ids)
	if n == 0 || s.ids[n-1] < id {
		s.ids = append(s.ids, id)
		return
	}
	i := sort.Search(n, func(k int) bool { return s.ids[k] >= id })
	s.ids = append(s.ids, 0)
	copy(s.ids[i+1:], s.ids[i:])
	s.ids[i] = id
}

// idsDelete removes one id from the sorted slice.
//
//tvdp:requires imagesMu
func (s *Store) idsDelete(id uint64) {
	i := sort.Search(len(s.ids), func(k int) bool { return s.ids[k] >= id })
	if i < len(s.ids) && s.ids[i] == id {
		s.ids = append(s.ids[:i], s.ids[i+1:]...)
	}
}

// GetImage returns a copy of the stored image. The pixel raster is
// deep-copied: under the concurrent serving path a caller mutating the
// returned pixels must never corrupt indexed state.
func (s *Store) GetImage(id uint64) (Image, error) {
	s.imagesMu.RLock()
	img, ok := s.images[id]
	if !ok {
		s.imagesMu.RUnlock()
		return Image{}, fmt.Errorf("%w: image %d", ErrNotFound, id)
	}
	out := *img
	s.imagesMu.RUnlock()
	// Stored pixel buffers are written once at ingest and never mutated
	// by the store, so the deep copy is safe outside the lock.
	out.Pixels = out.Pixels.Clone()
	return out, nil
}

// Descriptor is the index-relevant slice of an image row — everything
// but the pixel raster. Query filtering uses it to avoid deep-copying
// pixels per candidate.
type Descriptor struct {
	ID         uint64
	FOV        geo.FOV
	Scene      geo.Rect
	CapturedAt time.Time
	Origin     ImageOrigin
	ParentID   uint64
	WorkerID   string
	CampaignID uint64
	VideoID    uint64
}

// Describe returns an image's descriptor without copying pixels.
func (s *Store) Describe(id uint64) (Descriptor, error) {
	s.imagesMu.RLock()
	defer s.imagesMu.RUnlock()
	img, ok := s.images[id]
	if !ok {
		return Descriptor{}, fmt.Errorf("%w: image %d", ErrNotFound, id)
	}
	return Descriptor{
		ID:         img.ID,
		FOV:        img.FOV,
		Scene:      img.Scene,
		CapturedAt: img.TimestampCapturing,
		Origin:     img.Origin,
		ParentID:   img.ParentID,
		WorkerID:   img.WorkerID,
		CampaignID: img.CampaignID,
		VideoID:    img.VideoID,
	}, nil
}

// NumImages returns the image count.
func (s *Store) NumImages() int {
	s.imagesMu.RLock()
	defer s.imagesMu.RUnlock()
	return len(s.images)
}

// ImageIDs returns all image IDs in ascending order. The slice is
// maintained incrementally on add/delete, so this is a straight copy —
// no per-call sort.
func (s *Store) ImageIDs() []uint64 {
	s.imagesMu.RLock()
	defer s.imagesMu.RUnlock()
	return append([]uint64(nil), s.ids...)
}

// DeleteImage removes an image and all dependent rows and index entries.
func (s *Store) DeleteImage(id uint64) error {
	if s.closed.Load() {
		return ErrClosed
	}
	frame, err := s.encode(walOp{Kind: opDeleteImage, DeleteImageID: id})
	if err != nil {
		return err
	}
	s.imagesMu.Lock()
	s.featMu.Lock()
	s.annMu.Lock()
	s.kwMu.Lock()
	s.geoMu.Lock()
	unlock := func() {
		s.geoMu.Unlock()
		s.kwMu.Unlock()
		s.annMu.Unlock()
		s.featMu.Unlock()
		s.imagesMu.Unlock()
	}
	if s.closed.Load() {
		unlock()
		return ErrClosed
	}
	if err := s.applyDeleteImage(id); err != nil {
		unlock()
		return err
	}
	wait := s.enqueue(frame)
	unlock()
	return s.awaitCommit(wait, 1)
}

// applyDeleteImage unlinks an image from every subsystem. Callers hold
// imagesMu, featMu, annMu, kwMu, and geoMu.
//
//tvdp:requires imagesMu,featMu,annMu,kwMu,geoMu
func (s *Store) applyDeleteImage(id uint64) error {
	img, ok := s.images[id]
	if !ok {
		return fmt.Errorf("%w: image %d", ErrNotFound, id)
	}
	s.mutGen.Add(1)
	_ = s.spatial.Delete(id, img.Scene)
	s.temporal.Remove(id, img.TimestampCapturing)
	for _, lsh := range s.visual {
		lsh.Remove(id)
	}
	s.text.Remove(id)
	for _, anns := range [][]Annotation{s.annotations[id]} {
		for _, a := range anns {
			s.unlinkLabel(a.ClassificationID, a.Label, id)
		}
	}
	delete(s.annotations, id)
	delete(s.features, id)
	delete(s.keywords, id)
	delete(s.images, id)
	s.idsDelete(id)
	if s.mem != nil {
		s.mem.deleteImage(id)
	}
	return nil
}

// unlinkLabel drops one image from a byLabel posting list.
//
//tvdp:requires annMu
func (s *Store) unlinkLabel(classID uint64, label int, imageID uint64) {
	ids := s.byLabel[classID][label]
	for i, v := range ids {
		if v == imageID {
			s.byLabel[classID][label] = append(ids[:i], ids[i+1:]...)
			return
		}
	}
}

// ---- Features ----

// PutFeature stores (or replaces) one feature vector for an image and
// maintains the visual indexes.
func (s *Store) PutFeature(imageID uint64, kind string, vec []float64) error {
	if kind == "" || len(vec) == 0 {
		return fmt.Errorf("%w: empty feature kind or vector", ErrInvalid)
	}
	if s.closed.Load() {
		return ErrClosed
	}
	f := &Feature{ImageID: imageID, Kind: kind, Vec: append([]float64(nil), vec...)}
	frame, err := s.encode(walOp{Kind: opAddFeature, Feature: f})
	if err != nil {
		return err
	}
	s.imagesMu.RLock()
	s.featMu.Lock()
	unlock := func() { s.featMu.Unlock(); s.imagesMu.RUnlock() }
	if s.closed.Load() {
		unlock()
		return ErrClosed
	}
	if _, ok := s.images[imageID]; !ok {
		unlock()
		return fmt.Errorf("%w: image %d", ErrNotFound, imageID)
	}
	if err := s.applyFeature(f); err != nil {
		unlock()
		return err
	}
	wait := s.enqueue(frame)
	unlock()
	return s.awaitCommit(wait, 1)
}

// applyFeature stores one vector and maintains LSH/hybrid indexes.
// Callers hold featMu plus at least a read lock on imagesMu (the hybrid
// path reads the image's scene rect).
//
//tvdp:requires featMu,imagesMu:r
func (s *Store) applyFeature(f *Feature) error {
	s.mutGen.Add(1)
	kinds := s.features[f.ImageID]
	if kinds == nil {
		kinds = make(map[string][]float64)
		s.features[f.ImageID] = kinds
	}
	kinds[f.Kind] = f.Vec
	lsh, ok := s.visual[f.Kind]
	if !ok {
		cfg := s.cfg.LSH
		var err error
		lsh, err = index.NewLSH(len(f.Vec), cfg)
		if err != nil {
			return err
		}
		s.visual[f.Kind] = lsh
	}
	if err := lsh.Insert(f.ImageID, f.Vec); err != nil {
		return err
	}
	for _, hk := range s.cfg.HybridKinds {
		if hk != f.Kind {
			continue
		}
		ht, ok := s.hybrid[f.Kind]
		if !ok {
			var err error
			ht, err = index.NewHybridTree(len(f.Vec), s.cfg.RTree)
			if err != nil {
				return err
			}
			s.hybrid[f.Kind] = ht
		}
		img, ok := s.images[f.ImageID]
		if !ok {
			return fmt.Errorf("%w: image %d", ErrNotFound, f.ImageID)
		}
		if err := ht.Insert(index.HybridItem{ID: f.ImageID, Rect: img.Scene, Vec: f.Vec}); err != nil {
			return err
		}
	}
	if s.mem != nil {
		s.mem.putFeature(f)
	}
	return nil
}

// GetFeature returns the stored vector of one kind for an image.
func (s *Store) GetFeature(imageID uint64, kind string) ([]float64, error) {
	s.featMu.RLock()
	defer s.featMu.RUnlock()
	vec, ok := s.features[imageID][kind]
	if !ok {
		return nil, fmt.Errorf("%w: image %d kind %q", ErrUnknownFeature, imageID, kind)
	}
	return append([]float64(nil), vec...), nil
}

// FeatureKinds returns the kinds stored for an image, sorted.
func (s *Store) FeatureKinds(imageID uint64) []string {
	s.featMu.RLock()
	defer s.featMu.RUnlock()
	var out []string
	for k := range s.features[imageID] {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ---- Classifications & annotations ----

// CreateClassification registers a labelling scheme; names are unique.
func (s *Store) CreateClassification(name string, labels []string) (uint64, error) {
	return s.PutClassification(Classification{Name: name, Labels: labels})
}

// PutClassification registers a labelling scheme row whose ID the caller
// may have pre-assigned (c.ID == 0 allocates locally, exactly as
// CreateClassification always has). The shard coordinator uses the
// pre-assigned form to replicate the catalog to every shard under one
// globally-allocated ID; the logged WAL op is identical either way.
func (s *Store) PutClassification(c Classification) (uint64, error) {
	if c.Name == "" || len(c.Labels) == 0 {
		return 0, fmt.Errorf("%w: classification needs a name and labels", ErrInvalid)
	}
	if s.closed.Load() {
		return 0, ErrClosed
	}
	s.catalogMu.Lock()
	s.annMu.Lock()
	unlock := func() { s.annMu.Unlock(); s.catalogMu.Unlock() }
	if s.closed.Load() {
		unlock()
		return 0, ErrClosed
	}
	if _, dup := s.classByName[c.Name]; dup {
		unlock()
		return 0, fmt.Errorf("%w: classification %q", ErrDuplicate, c.Name)
	}
	if c.ID == 0 {
		c.ID = s.nextID.Add(1)
	}
	c.Labels = append([]string(nil), c.Labels...)
	frame, err := s.encode(walOp{Kind: opAddClass, Classification: &c})
	if err != nil {
		unlock()
		return 0, err
	}
	if err := s.applyClassification(&c); err != nil {
		unlock()
		return 0, err
	}
	wait := s.enqueue(frame)
	unlock()
	if err := s.awaitCommit(wait, 1); err != nil {
		return 0, err
	}
	return c.ID, nil
}

// applyClassification registers a scheme. Callers hold catalogMu and
// annMu (the empty byLabel bucket lives with the label index).
//
//tvdp:requires catalogMu,annMu
func (s *Store) applyClassification(c *Classification) error {
	if _, dup := s.classifications[c.ID]; dup {
		return fmt.Errorf("%w: classification %d", ErrDuplicate, c.ID)
	}
	s.mutGen.Add(1)
	s.bumpNextID(c.ID)
	s.classifications[c.ID] = c
	s.classByName[c.Name] = c.ID
	s.byLabel[c.ID] = make(map[int][]uint64)
	if s.mem != nil {
		s.mem.addClass(c)
	}
	return nil
}

// GetClassification looks a scheme up by ID.
func (s *Store) GetClassification(id uint64) (Classification, error) {
	s.catalogMu.RLock()
	defer s.catalogMu.RUnlock()
	c, ok := s.classifications[id]
	if !ok {
		return Classification{}, fmt.Errorf("%w: classification %d", ErrNotFound, id)
	}
	return *c, nil
}

// ClassificationByName looks a scheme up by name.
func (s *Store) ClassificationByName(name string) (Classification, error) {
	s.catalogMu.RLock()
	defer s.catalogMu.RUnlock()
	id, ok := s.classByName[name]
	if !ok {
		return Classification{}, fmt.Errorf("%w: classification %q", ErrNotFound, name)
	}
	return *s.classifications[id], nil
}

// Classifications lists all schemes sorted by ID.
func (s *Store) Classifications() []Classification {
	s.catalogMu.RLock()
	defer s.catalogMu.RUnlock()
	out := make([]Classification, 0, len(s.classifications))
	for _, c := range s.classifications {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Annotate attaches a label to an image under a classification scheme.
func (s *Store) Annotate(a Annotation) error {
	if s.closed.Load() {
		return ErrClosed
	}
	if a.Source == "" {
		a.Source = SourceMachine
	}
	s.catalogMu.RLock()
	s.imagesMu.RLock()
	s.annMu.Lock()
	unlock := func() { s.annMu.Unlock(); s.imagesMu.RUnlock(); s.catalogMu.RUnlock() }
	if s.closed.Load() {
		unlock()
		return ErrClosed
	}
	if _, ok := s.images[a.ImageID]; !ok {
		unlock()
		return fmt.Errorf("%w: image %d", ErrNotFound, a.ImageID)
	}
	c, ok := s.classifications[a.ClassificationID]
	if !ok {
		unlock()
		return fmt.Errorf("%w: classification %d", ErrNotFound, a.ClassificationID)
	}
	if a.Label < 0 || a.Label >= len(c.Labels) {
		unlock()
		return fmt.Errorf("%w: label %d of %q", ErrUnknownLabel, a.Label, c.Name)
	}
	frame, err := s.encode(walOp{Kind: opAddAnnotation, Annotation: &a})
	if err != nil {
		unlock()
		return err
	}
	if err := s.applyAnnotation(&a); err != nil {
		unlock()
		return err
	}
	wait := s.enqueue(frame)
	unlock()
	return s.awaitCommit(wait, 1)
}

// applyAnnotation appends one annotation row and its label-index entry.
// Callers hold annMu.
//
//tvdp:requires annMu
func (s *Store) applyAnnotation(a *Annotation) error {
	s.mutGen.Add(1)
	s.annotations[a.ImageID] = append(s.annotations[a.ImageID], *a)
	byLabel := s.byLabel[a.ClassificationID]
	if byLabel == nil {
		byLabel = make(map[int][]uint64)
		s.byLabel[a.ClassificationID] = byLabel
	}
	byLabel[a.Label] = append(byLabel[a.Label], a.ImageID)
	if s.mem != nil {
		s.mem.addAnnotation(a)
	}
	return nil
}

// AnnotationsFor returns all annotations on an image.
func (s *Store) AnnotationsFor(imageID uint64) []Annotation {
	s.annMu.RLock()
	defer s.annMu.RUnlock()
	return append([]Annotation(nil), s.annotations[imageID]...)
}

// ImagesByLabel returns image IDs annotated with (classificationID,
// label), ascending.
func (s *Store) ImagesByLabel(classificationID uint64, label int) []uint64 {
	s.annMu.RLock()
	defer s.annMu.RUnlock()
	ids := append([]uint64(nil), s.byLabel[classificationID][label]...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// ---- Keywords ----

// AddKeywords attaches manual keywords to an image and indexes them.
func (s *Store) AddKeywords(imageID uint64, words []string) error {
	if len(words) == 0 {
		return fmt.Errorf("%w: no keywords", ErrInvalid)
	}
	if s.closed.Load() {
		return ErrClosed
	}
	frame, err := s.encode(walOp{Kind: opAddKeywords, Keyword: &keywordOp{ImageID: imageID, Words: words}})
	if err != nil {
		return err
	}
	s.imagesMu.RLock()
	s.kwMu.Lock()
	unlock := func() { s.kwMu.Unlock(); s.imagesMu.RUnlock() }
	if s.closed.Load() {
		unlock()
		return ErrClosed
	}
	if _, ok := s.images[imageID]; !ok {
		unlock()
		return fmt.Errorf("%w: image %d", ErrNotFound, imageID)
	}
	if err := s.applyKeywords(imageID, words); err != nil {
		unlock()
		return err
	}
	wait := s.enqueue(frame)
	unlock()
	return s.awaitCommit(wait, 1)
}

// applyKeywords stores keywords and their inverted-index postings.
// Callers hold kwMu.
//
//tvdp:requires kwMu
func (s *Store) applyKeywords(imageID uint64, words []string) error {
	s.mutGen.Add(1)
	s.keywords[imageID] = append(s.keywords[imageID], words...)
	s.text.Add(imageID, words)
	if s.mem != nil {
		s.mem.addKeywords(imageID, words)
	}
	return nil
}

// KeywordsFor returns the keywords attached to an image.
func (s *Store) KeywordsFor(imageID uint64) []string {
	s.kwMu.RLock()
	defer s.kwMu.RUnlock()
	return append([]string(nil), s.keywords[imageID]...)
}

// ---- Users & API keys ----

// CreateUser registers a participant.
func (s *Store) CreateUser(name, role string) (uint64, error) {
	return s.PutUser(User{Name: name, Role: role})
}

// PutUser registers a user row, keeping a caller-pre-assigned u.ID
// (u.ID == 0 allocates locally, exactly as CreateUser always has). The
// shard coordinator pre-assigns so user IDs come from the one global
// allocator even though user rows live on shard 0 only.
func (s *Store) PutUser(u User) (uint64, error) {
	if u.Name == "" {
		return 0, fmt.Errorf("%w: user needs a name", ErrInvalid)
	}
	if s.closed.Load() {
		return 0, ErrClosed
	}
	if u.ID == 0 {
		u.ID = s.nextID.Add(1)
	}
	frame, err := s.encode(walOp{Kind: opAddUser, User: &u})
	if err != nil {
		return 0, err
	}
	s.catalogMu.Lock()
	if s.closed.Load() {
		s.catalogMu.Unlock()
		return 0, ErrClosed
	}
	if err := s.applyUser(&u); err != nil {
		s.catalogMu.Unlock()
		return 0, err
	}
	wait := s.enqueue(frame)
	s.catalogMu.Unlock()
	if err := s.awaitCommit(wait, 1); err != nil {
		return 0, err
	}
	return u.ID, nil
}

// applyUser registers a user row. Callers hold catalogMu.
//
//tvdp:requires catalogMu
func (s *Store) applyUser(u *User) error {
	if _, dup := s.users[u.ID]; dup {
		return fmt.Errorf("%w: user %d", ErrDuplicate, u.ID)
	}
	s.bumpNextID(u.ID)
	s.users[u.ID] = u
	if s.mem != nil {
		s.mem.addUser(u)
	}
	return nil
}

// applyAPIKey registers an issued key. Callers hold catalogMu.
//
//tvdp:requires catalogMu
func (s *Store) applyAPIKey(k *APIKey) {
	s.apiKeys[k.Key] = k
	if s.mem != nil {
		s.mem.addAPIKey(k)
	}
}

// GetUser returns a user by ID.
func (s *Store) GetUser(id uint64) (User, error) {
	s.catalogMu.RLock()
	defer s.catalogMu.RUnlock()
	u, ok := s.users[id]
	if !ok {
		return User{}, fmt.Errorf("%w: user %d", ErrNotFound, id)
	}
	return *u, nil
}

// IssueAPIKey mints a random key for the user.
func (s *Store) IssueAPIKey(userID uint64, now time.Time) (string, error) {
	if s.closed.Load() {
		return "", ErrClosed
	}
	buf := make([]byte, 16)
	if _, err := rand.Read(buf); err != nil {
		return "", fmt.Errorf("store: generating API key: %w", err)
	}
	k := &APIKey{Key: hex.EncodeToString(buf), UserID: userID, Issued: now}
	frame, err := s.encode(walOp{Kind: opAddAPIKey, APIKey: k})
	if err != nil {
		return "", err
	}
	s.catalogMu.Lock()
	if s.closed.Load() {
		s.catalogMu.Unlock()
		return "", ErrClosed
	}
	if _, ok := s.users[userID]; !ok {
		s.catalogMu.Unlock()
		return "", fmt.Errorf("%w: user %d", ErrNotFound, userID)
	}
	s.applyAPIKey(k)
	wait := s.enqueue(frame)
	s.catalogMu.Unlock()
	if err := s.awaitCommit(wait, 1); err != nil {
		return "", err
	}
	return k.Key, nil
}

// Authenticate resolves an API key to its user.
func (s *Store) Authenticate(key string) (User, error) {
	s.catalogMu.RLock()
	defer s.catalogMu.RUnlock()
	k, ok := s.apiKeys[key]
	if !ok {
		return User{}, fmt.Errorf("%w: api key", ErrNotFound)
	}
	u, ok := s.users[k.UserID]
	if !ok {
		return User{}, fmt.Errorf("%w: user %d", ErrNotFound, k.UserID)
	}
	return *u, nil
}

// ---- Query primitives (composed by internal/query) ----
//
// Every search takes a ctx and refuses to start (or, for the scan-shaped
// probes, aborts at the index's internal checkpoints) once the context is
// done. The ctx is only ever *polled* (ctx.Err) — never waited on — so a
// search holds its subsystem read lock strictly while computing, and a
// cancelled caller cannot stall Snapshot/Close behind a lock it parked
// on.

// SearchScene returns image IDs whose scene MBR intersects r, ascending.
// The sort pins the unranked-list order of the Backend contract: results
// are identical however the corpus is partitioned, instead of leaking
// R-tree traversal order.
func (s *Store) SearchScene(ctx context.Context, r geo.Rect) ([]uint64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.geoMu.RLock()
	ids := s.spatial.SearchRect(r)
	s.geoMu.RUnlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// SearchNearest returns up to k image IDs whose scenes are closest to p.
func (s *Store) SearchNearest(ctx context.Context, p geo.Point, k int) ([]uint64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.geoMu.RLock()
	defer s.geoMu.RUnlock()
	return s.spatial.NearestK(p, k), nil
}

// SearchVisual returns up to k approximate visual neighbours of vec under
// the given feature kind. The LSH probe checks ctx between hash tables
// and per scan checkpoint during re-ranking.
func (s *Store) SearchVisual(ctx context.Context, kind string, vec []float64, k int) ([]index.Match, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.featMu.RLock()
	defer s.featMu.RUnlock()
	lsh, ok := s.visual[kind]
	if !ok {
		return nil, fmt.Errorf("%w: no index for feature kind %q", ErrNotFound, kind)
	}
	return lsh.TopK(ctx, vec, k)
}

// SearchVisualRadius returns visual matches within distance r.
func (s *Store) SearchVisualRadius(ctx context.Context, kind string, vec []float64, r float64) ([]index.Match, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.featMu.RLock()
	defer s.featMu.RUnlock()
	lsh, ok := s.visual[kind]
	if !ok {
		return nil, fmt.Errorf("%w: no index for feature kind %q", ErrNotFound, kind)
	}
	return lsh.WithinRadius(ctx, vec, r)
}

// Generation returns the store's data-plane mutation generation: a
// counter bumped on every applied image, feature, annotation, keyword,
// classification, video, or delete. Cache layers stamp results with the
// generation observed before execution and serve them only while
// Generation() still matches — any write invalidates, which is
// conservative but never stale.
func (s *Store) Generation() uint64 { return s.mutGen.Load() }

// SearchVisualQuant returns up to k approximate visual neighbours via a
// full linear scan over int8 quantized codes (asymmetric distance: one
// per-query lookup table, no dequantization) followed by an exact
// full-precision re-rank of the shortlist. It is the cheap linear
// baseline of the read-path figure: same contract as SearchVisualExact
// but roughly dim·8/64 of the memory traffic per candidate.
func (s *Store) SearchVisualQuant(ctx context.Context, kind string, vec []float64, k int) ([]index.Match, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.featMu.RLock()
	defer s.featMu.RUnlock()
	lsh, ok := s.visual[kind]
	if !ok {
		return nil, fmt.Errorf("%w: no index for feature kind %q", ErrNotFound, kind)
	}
	return lsh.QuantTopK(ctx, vec, k)
}

// SearchVisualExact linearly re-ranks all vectors of a kind (baseline).
func (s *Store) SearchVisualExact(ctx context.Context, kind string, vec []float64, k int) ([]index.Match, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.featMu.RLock()
	defer s.featMu.RUnlock()
	lsh, ok := s.visual[kind]
	if !ok {
		return nil, fmt.Errorf("%w: no index for feature kind %q", ErrNotFound, kind)
	}
	return lsh.ExactTopK(ctx, vec, k)
}

// SearchHybrid runs a single-pass spatial-visual query when a hybrid tree
// is configured for the kind; ok=false means the caller must fall back to
// the two-phase plan. Availability is decided by configuration
// (Config.HybridKinds), not by whether any vector has arrived yet: a
// configured kind with an empty tree answers (nil, true, nil). That keeps
// ok a pure function of config, which is what lets a sharded deployment
// answer identically for any shard count. The tree walk checks ctx at
// every node descent.
func (s *Store) SearchHybrid(ctx context.Context, kind string, r geo.Rect, vec []float64, k int) ([]index.Match, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	s.featMu.RLock()
	defer s.featMu.RUnlock()
	ht, ok := s.hybrid[kind]
	if !ok {
		if s.hybridConfigured(kind) {
			return nil, true, nil
		}
		return nil, false, nil
	}
	ms, err := ht.SearchSpatialVisual(ctx, r, vec, k)
	return ms, true, err
}

// hybridConfigured reports whether kind is listed in Config.HybridKinds.
func (s *Store) hybridConfigured(kind string) bool {
	for _, hk := range s.cfg.HybridKinds {
		if hk == kind {
			return true
		}
	}
	return false
}

// SearchText returns keyword matches (disjunctive, TF-IDF ranked).
func (s *Store) SearchText(ctx context.Context, terms []string) ([]index.Match, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.kwMu.RLock()
	defer s.kwMu.RUnlock()
	return s.text.SearchAny(terms), nil
}

// SearchTextAll returns conjunctive keyword matches.
func (s *Store) SearchTextAll(ctx context.Context, terms []string) ([]index.Match, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.kwMu.RLock()
	defer s.kwMu.RUnlock()
	return s.text.SearchAll(terms), nil
}

// SearchTime returns image IDs captured in [from, to].
func (s *Store) SearchTime(ctx context.Context, from, to time.Time) ([]uint64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.geoMu.RLock()
	defer s.geoMu.RUnlock()
	return s.temporal.Range(from, to), nil
}

// ---- Scatter-gather support (consumed by internal/shard) ----
//
// These primitives expose what a deterministic cross-store merge needs:
// scores alongside IDs, timestamps alongside range hits, and corpus
// statistics separated from scoring so TF-IDF can be computed under
// global document frequencies. A single-store deployment never calls
// them; the coordinator composes them into the plain Search* contract.

// LastID returns the highest ID this store has allocated or observed.
// The shard coordinator recovers its global allocator at open as the max
// across shards.
func (s *Store) LastID() uint64 { return s.nextID.Load() }

// SearchNearestScored is SearchNearest with each hit's point-to-rect
// distance attached, selected under the (Dist, ID) total order (see
// RTree.NearestKMatches).
func (s *Store) SearchNearestScored(ctx context.Context, p geo.Point, k int) ([]index.Match, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.geoMu.RLock()
	defer s.geoMu.RUnlock()
	return s.spatial.NearestKMatches(p, k), nil
}

// SearchTimeEntries is SearchTime with each hit's capture timestamp
// attached, ascending in time.
func (s *Store) SearchTimeEntries(ctx context.Context, from, to time.Time) ([]index.TimeEntry, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.geoMu.RLock()
	defer s.geoMu.RUnlock()
	return s.temporal.RangeEntries(from, to), nil
}

// TextStats returns this store's text-corpus statistics for terms: the
// indexed document count and per-term document frequencies. Summed
// element-wise across shards they form the global statistics
// SearchTextStats/SearchTextAllStats score under.
func (s *Store) TextStats(ctx context.Context, terms []string) (docs int, df []int, err error) {
	if err := ctx.Err(); err != nil {
		return 0, nil, err
	}
	s.kwMu.RLock()
	defer s.kwMu.RUnlock()
	docs, df = s.text.DocFreqs(terms)
	return docs, df, nil
}

// SearchTextStats is SearchText scored under caller-supplied corpus
// statistics (from TextStats, possibly summed over shards).
func (s *Store) SearchTextStats(ctx context.Context, terms []string, docs int, df []int) ([]index.Match, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.kwMu.RLock()
	defer s.kwMu.RUnlock()
	return s.text.SearchAnyStats(terms, docs, df), nil
}

// SearchTextAllStats is SearchTextAll scored under caller-supplied corpus
// statistics (from TextStats, possibly summed over shards).
func (s *Store) SearchTextAllStats(ctx context.Context, terms []string, docs int, df []int) ([]index.Match, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.kwMu.RLock()
	defer s.kwMu.RUnlock()
	return s.text.SearchAllStats(terms, docs, df), nil
}
