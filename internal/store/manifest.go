package store

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// The manifest is the segment engine's root pointer: a small versioned
// file recording the live segment set and how much of WAL history those
// segments already contain. Every flush and every compaction installs a
// new manifest atomically (temp + rename + dir fsync, same discipline as
// PR 2 snapshots), so recovery always sees either the old segment set or
// the new one — never a half-installed mixture. Files not reachable from
// the manifest (a crashed flush's orphan segment, a superseded
// compaction input, a fully-flushed WAL generation) are garbage and are
// swept at open.

const manifestFile = "MANIFEST"

// manifestVersion is the on-disk format version; a newer-versioned
// manifest refuses to open rather than being misread.
const manifestVersion = 1

var manifestMagic = [8]byte{0xB8, 'T', 'V', 'M', 'A', 'N', 'v', '1'}

// segmentRef is one live segment in manifest order (oldest first).
type segmentRef struct {
	Name  string
	Rows  int
	Bytes int64
}

// manifest is the gob-serialised manifest payload.
type manifest struct {
	Version int
	// FlushedGen: every WAL generation <= this is fully contained in
	// Segments; recovery replays only generations above it.
	FlushedGen uint64
	// NextSeg is the next segment file number to allocate (never reused).
	NextSeg  uint64
	Segments []segmentRef
}

// clone returns a deep copy safe to mutate while the original is still
// the live manifest.
func (m manifest) clone() manifest {
	m.Segments = append([]segmentRef(nil), m.Segments...)
	return m
}

// writeManifest atomically installs a new manifest.
func writeManifest(dir string, m manifest) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&m); err != nil {
		return fmt.Errorf("store: encoding manifest: %w", err)
	}
	_, err := writeBlob(dir, manifestFile, manifestMagic, buf.Bytes())
	return err
}

// readManifest loads the manifest, returning (nil, nil) when the
// directory has none (fresh dir, or a legacy snapshot layout).
func readManifest(dir string) (*manifest, error) {
	if _, err := os.Stat(filepath.Join(dir, manifestFile)); errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	payload, err := readBlob(dir, manifestFile, manifestMagic)
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&m); err != nil {
		return nil, fmt.Errorf("%w: undecodable manifest: %v", ErrWALCorrupt, err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("store: manifest version %d is newer than this build understands (%d)", m.Version, manifestVersion)
	}
	return &m, nil
}
