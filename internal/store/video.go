package store

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/imagesim"
)

// Video support. Per the paper's data model (§IV-B, footnote 1), a video
// is represented by its key frames: each frame is a full Image row with
// its own fine-granularity FOV (the MediaQ property), linked to a Video
// entity. All image-level queries therefore work on frames for free; the
// video layer only adds grouping and ordering.

// Video is one registered video (e.g. a garbage-truck run or drone
// flight).
type Video struct {
	ID uint64
	// Description is free text ("wildfire survey flight 3").
	Description string
	// WorkerID identifies the capturing platform.
	WorkerID string
	// Start/End bound the frames' capture times.
	Start, End time.Time
	// FrameIDs lists the frame images in capture order.
	FrameIDs []uint64
}

// Frame is one key frame to ingest.
type Frame struct {
	Pixels     *imagesim.Image
	FOV        geo.FOV
	CapturedAt time.Time
	Keywords   []string
}

// AddVideo ingests a video as ordered key frames, each stored as a full
// Image row, and returns the video ID plus per-frame image IDs. The whole
// video — frames, keywords, and the video row — commits as one WAL batch
// member (one durability wait regardless of frame count).
func (s *Store) AddVideo(description, workerID string, frames []Frame) (uint64, []uint64, error) {
	if len(frames) == 0 {
		return 0, nil, fmt.Errorf("%w: video needs frames", ErrInvalid)
	}
	// Validate everything before mutating.
	for i, f := range frames {
		if f.Pixels == nil {
			return 0, nil, fmt.Errorf("%w: frame %d has no pixels", ErrInvalid, i)
		}
		if err := f.FOV.Validate(); err != nil {
			return 0, nil, fmt.Errorf("%w: frame %d: %v", ErrInvalid, i, err)
		}
	}
	if s.closed.Load() {
		return 0, nil, ErrClosed
	}
	// Build every row and its WAL frame before taking any lock.
	videoID := s.nextID.Add(1)
	v := &Video{
		ID: videoID, Description: description, WorkerID: workerID,
		Start: frames[0].CapturedAt, End: frames[0].CapturedAt,
	}
	imgs := make([]*Image, 0, len(frames))
	frameIDs := make([]uint64, 0, len(frames))
	var batch []byte
	ops := 0
	appendOp := func(op walOp) error {
		frame, err := s.encode(op)
		if err != nil {
			return err
		}
		batch = append(batch, frame...)
		ops++
		return nil
	}
	for i, f := range frames {
		img := &Image{
			ID:                 s.nextID.Add(1),
			Origin:             OriginOriginal,
			FOV:                f.FOV,
			Scene:              f.FOV.SceneLocation(),
			Pixels:             f.Pixels,
			TimestampCapturing: f.CapturedAt,
			TimestampUploading: f.CapturedAt,
			WorkerID:           workerID,
			VideoID:            videoID,
			FrameIndex:         i,
		}
		if err := appendOp(walOp{Kind: opAddImage, Image: img}); err != nil {
			return 0, nil, err
		}
		if len(f.Keywords) > 0 {
			if err := appendOp(walOp{Kind: opAddKeywords, Keyword: &keywordOp{ImageID: img.ID, Words: f.Keywords}}); err != nil {
				return 0, nil, err
			}
		}
		imgs = append(imgs, img)
		frameIDs = append(frameIDs, img.ID)
		if f.CapturedAt.Before(v.Start) {
			v.Start = f.CapturedAt
		}
		if f.CapturedAt.After(v.End) {
			v.End = f.CapturedAt
		}
	}
	v.FrameIDs = frameIDs
	if err := appendOp(walOp{Kind: opAddVideo, Video: v}); err != nil {
		return 0, nil, err
	}
	// Lock order: catalogMu → imagesMu → kwMu → geoMu.
	s.catalogMu.Lock()
	s.imagesMu.Lock()
	s.kwMu.Lock()
	s.geoMu.Lock()
	unlock := func() {
		s.geoMu.Unlock()
		s.kwMu.Unlock()
		s.imagesMu.Unlock()
		s.catalogMu.Unlock()
	}
	if s.closed.Load() {
		unlock()
		return 0, nil, ErrClosed
	}
	for i, img := range imgs {
		if err := s.applyImage(img); err != nil {
			unlock()
			return 0, nil, err
		}
		if kw := frames[i].Keywords; len(kw) > 0 {
			if err := s.applyKeywords(img.ID, kw); err != nil {
				unlock()
				return 0, nil, err
			}
		}
	}
	if err := s.applyVideo(v); err != nil {
		unlock()
		return 0, nil, err
	}
	var wait <-chan error
	if len(batch) > 0 {
		wait = s.enqueueN(batch, uint64(ops))
	}
	unlock()
	if err := s.awaitCommit(wait, ops); err != nil {
		return 0, nil, err
	}
	return videoID, frameIDs, nil
}

// PutVideo stores a fully-formed video row (metadata and frame ID list;
// the frames themselves are separate Image rows). A zero v.ID is
// allocated here; a preset ID is honored. The shard coordinator uses this
// for the decomposed N>1 video-ingest path, where frames land on their
// hash shards and the video row lands on the catalog shard.
func (s *Store) PutVideo(v Video) (uint64, error) {
	if len(v.FrameIDs) == 0 {
		return 0, fmt.Errorf("%w: video needs frames", ErrInvalid)
	}
	if s.closed.Load() {
		return 0, ErrClosed
	}
	if v.ID == 0 {
		v.ID = s.nextID.Add(1)
	}
	v.FrameIDs = append([]uint64(nil), v.FrameIDs...)
	frame, err := s.encode(walOp{Kind: opAddVideo, Video: &v})
	if err != nil {
		return 0, err
	}
	s.catalogMu.Lock()
	if s.closed.Load() {
		s.catalogMu.Unlock()
		return 0, ErrClosed
	}
	if err := s.applyVideo(&v); err != nil {
		s.catalogMu.Unlock()
		return 0, err
	}
	wait := s.enqueue(frame)
	s.catalogMu.Unlock()
	if err := s.awaitCommit(wait, 1); err != nil {
		return 0, err
	}
	return v.ID, nil
}

// applyVideo registers a video row. Callers hold catalogMu.
//
//tvdp:requires catalogMu
func (s *Store) applyVideo(v *Video) error {
	if _, dup := s.videos[v.ID]; dup {
		return fmt.Errorf("%w: video %d", ErrDuplicate, v.ID)
	}
	s.mutGen.Add(1)
	s.bumpNextID(v.ID)
	s.videos[v.ID] = v
	if s.mem != nil {
		s.mem.addVideo(v)
	}
	return nil
}

// GetVideo returns a video's metadata and frame list.
func (s *Store) GetVideo(id uint64) (Video, error) {
	s.catalogMu.RLock()
	defer s.catalogMu.RUnlock()
	v, ok := s.videos[id]
	if !ok {
		return Video{}, fmt.Errorf("%w: video %d", ErrNotFound, id)
	}
	out := *v
	out.FrameIDs = append([]uint64(nil), v.FrameIDs...)
	return out, nil
}

// Videos lists all videos sorted by ID.
func (s *Store) Videos() []Video {
	s.catalogMu.RLock()
	defer s.catalogMu.RUnlock()
	out := make([]Video, 0, len(s.videos))
	for _, v := range s.videos {
		cp := *v
		cp.FrameIDs = append([]uint64(nil), v.FrameIDs...)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// AddAugmented stores an augmented derivative of an existing image,
// inheriting its spatial and temporal descriptors (paper §IV-B).
func (s *Store) AddAugmented(parentID uint64, pixels *imagesim.Image) (uint64, error) {
	if pixels == nil {
		return 0, fmt.Errorf("%w: augmented image has no pixels", ErrInvalid)
	}
	if s.closed.Load() {
		return 0, ErrClosed
	}
	// Snapshot the parent's descriptors under a read lock, build and
	// encode outside any lock, then re-check the parent under the write
	// lock (it may have been deleted in between).
	s.imagesMu.RLock()
	parent, ok := s.images[parentID]
	if !ok {
		s.imagesMu.RUnlock()
		return 0, fmt.Errorf("%w: parent image %d", ErrNotFound, parentID)
	}
	img := &Image{
		Origin:             OriginAugmented,
		ParentID:           parentID,
		FOV:                parent.FOV,
		Scene:              parent.Scene,
		TimestampCapturing: parent.TimestampCapturing,
		TimestampUploading: parent.TimestampUploading,
		WorkerID:           parent.WorkerID,
	}
	s.imagesMu.RUnlock()
	img.ID = s.nextID.Add(1)
	img.Pixels = pixels
	frame, err := s.encode(walOp{Kind: opAddImage, Image: img})
	if err != nil {
		return 0, err
	}
	s.imagesMu.Lock()
	s.geoMu.Lock()
	unlock := func() { s.geoMu.Unlock(); s.imagesMu.Unlock() }
	if s.closed.Load() {
		unlock()
		return 0, ErrClosed
	}
	if _, ok := s.images[parentID]; !ok {
		unlock()
		return 0, fmt.Errorf("%w: parent image %d", ErrNotFound, parentID)
	}
	if err := s.applyImage(img); err != nil {
		unlock()
		return 0, err
	}
	wait := s.enqueue(frame)
	unlock()
	if err := s.awaitCommit(wait, 1); err != nil {
		return 0, err
	}
	return img.ID, nil
}

// AugmentedOf returns the IDs of augmented derivatives of an image,
// ascending.
func (s *Store) AugmentedOf(parentID uint64) []uint64 {
	s.imagesMu.RLock()
	defer s.imagesMu.RUnlock()
	var out []uint64
	for id, img := range s.images {
		if img.Origin == OriginAugmented && img.ParentID == parentID {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
