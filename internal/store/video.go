package store

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/imagesim"
)

// Video support. Per the paper's data model (§IV-B, footnote 1), a video
// is represented by its key frames: each frame is a full Image row with
// its own fine-granularity FOV (the MediaQ property), linked to a Video
// entity. All image-level queries therefore work on frames for free; the
// video layer only adds grouping and ordering.

// Video is one registered video (e.g. a garbage-truck run or drone
// flight).
type Video struct {
	ID uint64
	// Description is free text ("wildfire survey flight 3").
	Description string
	// WorkerID identifies the capturing platform.
	WorkerID string
	// Start/End bound the frames' capture times.
	Start, End time.Time
	// FrameIDs lists the frame images in capture order.
	FrameIDs []uint64
}

// Frame is one key frame to ingest.
type Frame struct {
	Pixels     *imagesim.Image
	FOV        geo.FOV
	CapturedAt time.Time
	Keywords   []string
}

// AddVideo ingests a video as ordered key frames, each stored as a full
// Image row, and returns the video ID plus per-frame image IDs.
func (s *Store) AddVideo(description, workerID string, frames []Frame) (uint64, []uint64, error) {
	if len(frames) == 0 {
		return 0, nil, fmt.Errorf("%w: video needs frames", ErrInvalid)
	}
	// Validate everything before mutating.
	for i, f := range frames {
		if f.Pixels == nil {
			return 0, nil, fmt.Errorf("%w: frame %d has no pixels", ErrInvalid, i)
		}
		if err := f.FOV.Validate(); err != nil {
			return 0, nil, fmt.Errorf("%w: frame %d: %v", ErrInvalid, i, err)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, nil, ErrClosed
	}
	s.nextID++
	videoID := s.nextID
	v := &Video{
		ID: videoID, Description: description, WorkerID: workerID,
		Start: frames[0].CapturedAt, End: frames[0].CapturedAt,
	}
	frameIDs := make([]uint64, 0, len(frames))
	for i, f := range frames {
		s.nextID++
		img := &Image{
			ID:                 s.nextID,
			Origin:             OriginOriginal,
			FOV:                f.FOV,
			Scene:              f.FOV.SceneLocation(),
			Pixels:             f.Pixels,
			TimestampCapturing: f.CapturedAt,
			TimestampUploading: f.CapturedAt,
			WorkerID:           workerID,
			VideoID:            videoID,
			FrameIndex:         i,
		}
		if err := s.applyImage(img); err != nil {
			return 0, nil, err
		}
		if err := s.log(walOp{Kind: opAddImage, Image: img}); err != nil {
			return 0, nil, err
		}
		if len(f.Keywords) > 0 {
			if err := s.applyKeywords(img.ID, f.Keywords); err != nil {
				return 0, nil, err
			}
			if err := s.log(walOp{Kind: opAddKeywords, Keyword: &keywordOp{ImageID: img.ID, Words: f.Keywords}}); err != nil {
				return 0, nil, err
			}
		}
		frameIDs = append(frameIDs, img.ID)
		if f.CapturedAt.Before(v.Start) {
			v.Start = f.CapturedAt
		}
		if f.CapturedAt.After(v.End) {
			v.End = f.CapturedAt
		}
	}
	v.FrameIDs = frameIDs
	if err := s.applyVideo(v); err != nil {
		return 0, nil, err
	}
	if err := s.log(walOp{Kind: opAddVideo, Video: v}); err != nil {
		return 0, nil, err
	}
	return videoID, frameIDs, nil
}

func (s *Store) applyVideo(v *Video) error {
	if _, dup := s.videos[v.ID]; dup {
		return fmt.Errorf("%w: video %d", ErrDuplicate, v.ID)
	}
	if v.ID > s.nextID {
		s.nextID = v.ID
	}
	s.videos[v.ID] = v
	return nil
}

// GetVideo returns a video's metadata and frame list.
func (s *Store) GetVideo(id uint64) (Video, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.videos[id]
	if !ok {
		return Video{}, fmt.Errorf("%w: video %d", ErrNotFound, id)
	}
	out := *v
	out.FrameIDs = append([]uint64(nil), v.FrameIDs...)
	return out, nil
}

// Videos lists all videos sorted by ID.
func (s *Store) Videos() []Video {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Video, 0, len(s.videos))
	for _, v := range s.videos {
		cp := *v
		cp.FrameIDs = append([]uint64(nil), v.FrameIDs...)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// AddAugmented stores an augmented derivative of an existing image,
// inheriting its spatial and temporal descriptors (paper §IV-B).
func (s *Store) AddAugmented(parentID uint64, pixels *imagesim.Image) (uint64, error) {
	if pixels == nil {
		return 0, fmt.Errorf("%w: augmented image has no pixels", ErrInvalid)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	parent, ok := s.images[parentID]
	if !ok {
		return 0, fmt.Errorf("%w: parent image %d", ErrNotFound, parentID)
	}
	s.nextID++
	img := &Image{
		ID:                 s.nextID,
		Origin:             OriginAugmented,
		ParentID:           parentID,
		FOV:                parent.FOV,
		Scene:              parent.Scene,
		Pixels:             pixels,
		TimestampCapturing: parent.TimestampCapturing,
		TimestampUploading: parent.TimestampUploading,
		WorkerID:           parent.WorkerID,
	}
	if err := s.applyImage(img); err != nil {
		return 0, err
	}
	if err := s.log(walOp{Kind: opAddImage, Image: img}); err != nil {
		return 0, err
	}
	return img.ID, nil
}

// AugmentedOf returns the IDs of augmented derivatives of an image,
// ascending.
func (s *Store) AugmentedOf(parentID uint64) []uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []uint64
	for id, img := range s.images {
		if img.Origin == OriginAugmented && img.ParentID == parentID {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
