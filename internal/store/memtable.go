package store

import "sort"

// memtable accumulates the net effect of every mutation since the last
// WAL rotation — the segment engine's in-memory write buffer. It is not
// a separate index: the live store state already serves reads; the
// memtable exists so a flush can serialise *only the recent window* to a
// sorted immutable segment instead of rewriting the whole corpus.
//
// Concurrency: the memtable has no lock of its own. Each field is
// written exclusively under the same subsystem write lock that guards
// its live counterpart (images under imagesMu, features under featMu,
// and so on — see the Store lock map), because every write happens
// inside the applyX functions while those locks are held. The freeze
// swap reads the whole struct under all six locks, so no field is ever
// read while another goroutine can write it.
//
// Deletes both scrub the in-window rows and record a tombstone: the
// tombstone kills older copies living in already-flushed segments, while
// the scrub keeps a create-then-delete inside one window from flushing
// at all. Within a segment, tombstones apply before rows (see
// loadSegment), so a delete-then-readd of the same ID in one window
// nets out to the fresh row.
type memtable struct {
	images      map[uint64]*Image
	features    map[uint64]map[string][]float64
	classes     map[uint64]*Classification
	annotations map[uint64][]Annotation
	keywords    map[uint64][]string
	users       map[uint64]*User
	apiKeys     map[string]*APIKey
	videos      map[uint64]*Video
	campaigns   map[uint64]*CampaignRec
	deletes     map[uint64]bool
	// nextID is the allocator high-water mark, stamped at freeze time
	// (under all six locks) rather than per-op, so concurrent subsystems
	// never contend on it.
	nextID uint64
}

func newMemtable() *memtable {
	return &memtable{
		images:      make(map[uint64]*Image),
		features:    make(map[uint64]map[string][]float64),
		classes:     make(map[uint64]*Classification),
		annotations: make(map[uint64][]Annotation),
		keywords:    make(map[uint64][]string),
		users:       make(map[uint64]*User),
		apiKeys:     make(map[string]*APIKey),
		videos:      make(map[uint64]*Video),
		campaigns:   make(map[uint64]*CampaignRec),
		deletes:     make(map[uint64]bool),
	}
}

// empty reports whether the window holds nothing worth flushing.
func (m *memtable) empty() bool {
	return len(m.images) == 0 && len(m.features) == 0 && len(m.classes) == 0 &&
		len(m.annotations) == 0 && len(m.keywords) == 0 && len(m.users) == 0 &&
		len(m.apiKeys) == 0 && len(m.videos) == 0 && len(m.campaigns) == 0 &&
		len(m.deletes) == 0
}

// ---- Record methods (called from applyX under that subsystem's lock) ----

func (m *memtable) addImage(img *Image) { m.images[img.ID] = img }

func (m *memtable) putFeature(f *Feature) {
	kinds := m.features[f.ImageID]
	if kinds == nil {
		kinds = make(map[string][]float64)
		m.features[f.ImageID] = kinds
	}
	kinds[f.Kind] = f.Vec
}

func (m *memtable) addClass(c *Classification) { m.classes[c.ID] = c }

func (m *memtable) addAnnotation(a *Annotation) {
	m.annotations[a.ImageID] = append(m.annotations[a.ImageID], *a)
}

func (m *memtable) addKeywords(imageID uint64, words []string) {
	m.keywords[imageID] = append(m.keywords[imageID], words...)
}

func (m *memtable) addUser(u *User)            { m.users[u.ID] = u }
func (m *memtable) addAPIKey(k *APIKey)        { m.apiKeys[k.Key] = k }
func (m *memtable) addVideo(v *Video)          { m.videos[v.ID] = v }
func (m *memtable) addCampaign(c *CampaignRec) { m.campaigns[c.ID] = c }

// deleteImage scrubs the in-window rows for id and records a tombstone
// against older segments. Callers hold imagesMu..geoMu (the delete lock
// set), which covers every map touched here.
//
//tvdp:requires imagesMu,featMu,annMu,kwMu,geoMu
func (m *memtable) deleteImage(id uint64) {
	delete(m.images, id)
	delete(m.features, id)
	delete(m.annotations, id)
	delete(m.keywords, id)
	m.deletes[id] = true
}

// absorb merges one already-sorted segment into the accumulator, oldest
// first — the compaction merge. Tombstones apply before rows, mirroring
// loadSegment, so a segment's net window semantics survive the merge.
func (m *memtable) absorb(seg *segmentData) {
	for _, id := range seg.Tombstones {
		//tvdp:nolint guardedby the accumulator is a compaction-private memtable no reader can see; the lock contract protects only the live window
		m.deleteImage(id)
	}
	for _, img := range seg.Images {
		m.addImage(img)
	}
	for _, c := range seg.Classifications {
		m.addClass(c)
	}
	for _, f := range seg.Features {
		m.putFeature(f)
	}
	for _, a := range seg.Annotations {
		m.addAnnotation(a)
	}
	for _, k := range seg.Keywords {
		m.addKeywords(k.ImageID, k.Words)
	}
	for _, u := range seg.Users {
		m.addUser(u)
	}
	for _, k := range seg.APIKeys {
		m.addAPIKey(k)
	}
	for _, v := range seg.Videos {
		m.addVideo(v)
	}
	for _, c := range seg.Campaigns {
		m.addCampaign(c)
	}
	if seg.NextID > m.nextID {
		m.nextID = seg.NextID
	}
}

// toSegment serialises the window as a sorted immutable segment. Every
// slice is ordered by its key (per-image slices keep their append
// order), so a given logical window always produces identical segment
// bytes regardless of map iteration order. dropTombstones is set by
// compaction when the merge covered the full segment prefix: with no
// older segment left underneath, the tombstones have nothing left to
// kill and would only pin garbage forever.
func (m *memtable) toSegment(dropTombstones bool) *segmentData {
	seg := &segmentData{NextID: m.nextID}
	if !dropTombstones {
		for id := range m.deletes {
			seg.Tombstones = append(seg.Tombstones, id)
		}
		sort.Slice(seg.Tombstones, func(i, j int) bool { return seg.Tombstones[i] < seg.Tombstones[j] })
	}
	for _, img := range m.images {
		seg.Images = append(seg.Images, img)
	}
	sort.Slice(seg.Images, func(i, j int) bool { return seg.Images[i].ID < seg.Images[j].ID })
	for id, kinds := range m.features {
		for kind, vec := range kinds {
			seg.Features = append(seg.Features, &Feature{ImageID: id, Kind: kind, Vec: vec})
		}
	}
	sort.Slice(seg.Features, func(i, j int) bool {
		if seg.Features[i].ImageID != seg.Features[j].ImageID {
			return seg.Features[i].ImageID < seg.Features[j].ImageID
		}
		return seg.Features[i].Kind < seg.Features[j].Kind
	})
	for _, c := range m.classes {
		seg.Classifications = append(seg.Classifications, c)
	}
	sort.Slice(seg.Classifications, func(i, j int) bool {
		return seg.Classifications[i].ID < seg.Classifications[j].ID
	})
	var imgIDs []uint64
	for id := range m.annotations {
		imgIDs = append(imgIDs, id)
	}
	sort.Slice(imgIDs, func(i, j int) bool { return imgIDs[i] < imgIDs[j] })
	for _, id := range imgIDs {
		for i := range m.annotations[id] {
			a := m.annotations[id][i]
			seg.Annotations = append(seg.Annotations, &a)
		}
	}
	imgIDs = imgIDs[:0]
	for id := range m.keywords {
		imgIDs = append(imgIDs, id)
	}
	sort.Slice(imgIDs, func(i, j int) bool { return imgIDs[i] < imgIDs[j] })
	for _, id := range imgIDs {
		seg.Keywords = append(seg.Keywords, keywordOp{ImageID: id, Words: m.keywords[id]})
	}
	for _, u := range m.users {
		seg.Users = append(seg.Users, u)
	}
	sort.Slice(seg.Users, func(i, j int) bool { return seg.Users[i].ID < seg.Users[j].ID })
	for _, k := range m.apiKeys {
		seg.APIKeys = append(seg.APIKeys, k)
	}
	sort.Slice(seg.APIKeys, func(i, j int) bool { return seg.APIKeys[i].Key < seg.APIKeys[j].Key })
	for _, v := range m.videos {
		seg.Videos = append(seg.Videos, v)
	}
	sort.Slice(seg.Videos, func(i, j int) bool { return seg.Videos[i].ID < seg.Videos[j].ID })
	for _, c := range m.campaigns {
		seg.Campaigns = append(seg.Campaigns, c)
	}
	sort.Slice(seg.Campaigns, func(i, j int) bool { return seg.Campaigns[i].ID < seg.Campaigns[j].ID })
	return seg
}
