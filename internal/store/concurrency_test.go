package store

import (
	"context"
	"errors"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/imagesim"
)

// Tests for the concurrent serving path: group-commit batching, the
// decomposed-lock store under mixed load, sorted-id maintenance, and
// read-copy isolation. Run with -race for the full guarantee.

// slowSyncFile is a WAL backend whose fsync takes a fixed wall-clock
// time. It forces concurrent mutations to pile up in the committer queue
// while a batch is syncing, making group-commit coalescing deterministic
// even on filesystems where a real fsync is near-instant.
type slowSyncFile struct {
	f     walBackend
	delay time.Duration
}

func (s *slowSyncFile) Write(p []byte) (int, error) { return s.f.Write(p) }
func (s *slowSyncFile) Sync() error {
	time.Sleep(s.delay)
	return s.f.Sync()
}
func (s *slowSyncFile) Close() error { return s.f.Close() }

func installSlowSync(t *testing.T, delay time.Duration) {
	t.Helper()
	prev := newWALBackend
	newWALBackend = func(f *os.File) walBackend { return &slowSyncFile{f: f, delay: delay} }
	t.Cleanup(func() { newWALBackend = prev })
}

// TestGroupCommitBatching proves the committer coalesces concurrent
// synced mutations: with 8 writers against a slow fsync, the fsync count
// must come in well under one per operation while every op still
// round-trips durably.
func TestGroupCommitBatching(t *testing.T) {
	installSlowSync(t, 2*time.Millisecond)
	cfg := DefaultConfig()
	cfg.Dir = t.TempDir()
	cfg.SyncEveryWrite = true
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}

	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := s.AddImage(testImage(t, float64((w*perWriter+i)%360))); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := s.WALStats()
	const total = writers * perWriter
	if st.Ops != total {
		t.Fatalf("WALStats.Ops = %d, want %d", st.Ops, total)
	}
	if st.Fsyncs == 0 {
		t.Fatal("SyncEveryWrite store recorded zero fsyncs")
	}
	if st.Fsyncs*2 > st.Ops {
		t.Fatalf("no group-commit coalescing: %d fsyncs for %d ops", st.Fsyncs, st.Ops)
	}
	t.Logf("group commit: %d ops in %d batches, %d fsyncs (%.2f ops/fsync)",
		st.Ops, st.Batches, st.Fsyncs, float64(st.Ops)/float64(st.Fsyncs))

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Everything acknowledged must be on disk.
	r := diskStore(t, cfg.Dir)
	defer r.Close()
	if n := r.NumImages(); n != total {
		t.Fatalf("recovered %d images, want %d", n, total)
	}
}

// TestConcurrentMixedWorkload hammers every mutation family plus the
// query surface at once against a synced disk store, then verifies no
// write was lost and recovery sees the identical state. The -race run of
// this test is the lock-decomposition correctness gate.
func TestConcurrentMixedWorkload(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Dir = t.TempDir()
	cfg.SyncEveryWrite = true
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}

	classID, err := s.CreateClassification("cleanliness", []string{"clean", "dirty"})
	if err != nil {
		t.Fatal(err)
	}

	const writers, perWriter = 4, 15
	var (
		writeWG sync.WaitGroup
		readWG  sync.WaitGroup
		mu      sync.Mutex
		ids     []uint64
	)
	errs := make(chan error, writers+2)
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			for i := 0; i < perWriter; i++ {
				id, err := s.AddImage(testImage(t, float64((w*perWriter+i)%360)))
				if err != nil {
					errs <- err
					return
				}
				if err := s.PutFeature(id, "colour", []float64{float64(w), float64(i), 0.5}); err != nil {
					errs <- err
					return
				}
				if err := s.AddKeywords(id, []string{"street", "graffiti"}); err != nil {
					errs <- err
					return
				}
				if err := s.Annotate(Annotation{ImageID: id, ClassificationID: classID, Label: i % 2, Confidence: 1, Source: SourceHuman}); err != nil {
					errs <- err
					return
				}
				mu.Lock()
				ids = append(ids, id)
				mu.Unlock()
			}
		}(w)
	}
	// Readers run across every subsystem until the writers finish; any
	// torn read trips -race or returns inconsistent data.
	stopReads := make(chan struct{})
	for r := 0; r < 2; r++ {
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			for {
				select {
				case <-stopReads:
					return
				default:
				}
				for _, id := range s.ImageIDs() {
					if _, err := s.Describe(id); err != nil && !errors.Is(err, ErrNotFound) {
						errs <- err
						return
					}
				}
				s.SearchScene(context.Background(), geo.NewRect(geo.Destination(la, 315, 3000), geo.Destination(la, 135, 3000)))
				s.SearchText(context.Background(), []string{"graffiti"})
				s.ImagesByLabel(classID, 0)
				_, _ = s.SearchVisual(context.Background(), "colour", []float64{1, 1, 0.5}, 5)
			}
		}()
	}

	writeWG.Wait()
	close(stopReads)
	readWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	mu.Lock()
	added := len(ids)
	mu.Unlock()
	if added != writers*perWriter {
		t.Fatalf("writers recorded %d images, want %d", added, writers*perWriter)
	}

	const total = writers * perWriter
	verify := func(st *Store, label string) {
		t.Helper()
		if n := st.NumImages(); n != total {
			t.Fatalf("%s: NumImages = %d, want %d", label, n, total)
		}
		got := st.ImageIDs()
		if len(got) != total {
			t.Fatalf("%s: ImageIDs len = %d, want %d", label, len(got), total)
		}
		for i := 1; i < len(got); i++ {
			if got[i-1] >= got[i] {
				t.Fatalf("%s: ImageIDs not strictly ascending at %d: %v", label, i, got[i-1:i+1])
			}
		}
		for _, id := range got {
			if _, err := st.GetFeature(id, "colour"); err != nil {
				t.Fatalf("%s: lost feature for %d: %v", label, id, err)
			}
			if kw := st.KeywordsFor(id); len(kw) != 2 {
				t.Fatalf("%s: lost keywords for %d: %v", label, id, kw)
			}
			if anns := st.AnnotationsFor(id); len(anns) != 1 {
				t.Fatalf("%s: lost annotation for %d: %v", label, id, anns)
			}
		}
		if n := len(st.ImagesByLabel(classID, 0)) + len(st.ImagesByLabel(classID, 1)); n != total {
			t.Fatalf("%s: label index holds %d entries, want %d", label, n, total)
		}
	}
	verify(s, "live")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := diskStore(t, cfg.Dir)
	defer r.Close()
	verify(r, "recovered")
}

// TestImageIDsSortedAcrossDeletesAndReplay is the regression test for the
// incrementally maintained id slice: interleaved adds and deletes must
// keep ImageIDs strictly ascending and exact, both live and after WAL
// replay.
func TestImageIDsSortedAcrossDeletesAndReplay(t *testing.T) {
	dir := t.TempDir()
	s := diskStore(t, dir)

	want := map[uint64]bool{}
	var all []uint64
	for i := 0; i < 20; i++ {
		id, err := s.AddImage(testImage(t, float64(i*17%360)))
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, id)
		want[id] = true
	}
	// Delete from the middle, the ends, and interleaved with new adds.
	for _, i := range []int{10, 0, 19, 5, 6} {
		if err := s.DeleteImage(all[i]); err != nil {
			t.Fatal(err)
		}
		delete(want, all[i])
	}
	for i := 0; i < 4; i++ {
		id, err := s.AddImage(testImage(t, float64(i*31%360)))
		if err != nil {
			t.Fatal(err)
		}
		want[id] = true
	}
	if err := s.DeleteImage(all[15]); err != nil {
		t.Fatal(err)
	}
	delete(want, all[15])

	check := func(st *Store, label string) {
		t.Helper()
		got := st.ImageIDs()
		if len(got) != len(want) {
			t.Fatalf("%s: %d ids, want %d", label, len(got), len(want))
		}
		for i, id := range got {
			if !want[id] {
				t.Fatalf("%s: unexpected id %d", label, id)
			}
			if i > 0 && got[i-1] >= id {
				t.Fatalf("%s: ids not strictly ascending: %v", label, got)
			}
		}
	}
	check(s, "live")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := diskStore(t, dir)
	check(r, "replayed")
	// Deleting a replayed id keeps the slice consistent too.
	rest := r.ImageIDs()
	if err := r.DeleteImage(rest[len(rest)/2]); err != nil {
		t.Fatal(err)
	}
	delete(want, rest[len(rest)/2])
	check(r, "replayed+delete")
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestGetImageMutationIsolation is the regression test for the shallow
// pixel copy: a caller scribbling on a returned image's raster must not
// alter stored state.
func TestGetImageMutationIsolation(t *testing.T) {
	s := memStore(t)
	src := testImage(t, 42)
	id, err := s.AddImage(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.GetImage(id)
	if err != nil {
		t.Fatal(err)
	}
	orig := got.Pixels.Pix[0]
	got.Pixels.Fill(imagesim.RGB{R: 1, G: 2, B: 3})

	again, err := s.GetImage(id)
	if err != nil {
		t.Fatal(err)
	}
	if again.Pixels.Pix[0] != orig {
		t.Fatalf("stored pixels mutated through returned copy: %+v != %+v", again.Pixels.Pix[0], orig)
	}
	if &again.Pixels.Pix[0] == &got.Pixels.Pix[0] {
		t.Fatal("GetImage returned shared pixel backing array")
	}
}

// TestCloseUnblocksAndFailsMutations checks the shutdown path of the
// group-commit committer: Close drains in-flight work, later mutations
// fail fast with ErrClosed, and reads keep serving memory state.
func TestCloseUnblocksAndFailsMutations(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Dir = t.TempDir()
	cfg.SyncEveryWrite = true
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	id, err := s.AddImage(testImage(t, 7))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := s.AddImage(testImage(t, 8)); !errors.Is(err, ErrClosed) {
		t.Fatalf("AddImage after Close = %v, want ErrClosed", err)
	}
	if err := s.DeleteImage(id); !errors.Is(err, ErrClosed) {
		t.Fatalf("DeleteImage after Close = %v, want ErrClosed", err)
	}
	if _, err := s.GetImage(id); err != nil {
		t.Fatalf("read after Close: %v", err)
	}
}
