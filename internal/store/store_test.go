package store

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/feature"
	"repro/internal/geo"
	"repro/internal/imagesim"
	"repro/internal/synth"
)

var la = geo.Point{Lat: 34.0522, Lon: -118.2437}

func memStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func diskStore(t *testing.T, dir string) *Store {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Dir = dir
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// snapStore opens dir under the legacy snapshot engine — used by tests
// that manipulate the snapshot.gob/wal.gob layout directly.
func snapStore(t *testing.T, dir string) *Store {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Dir = dir
	cfg.Engine = EngineSnapshot
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testImage(t *testing.T, brg float64) Image {
	t.Helper()
	px := imagesim.MustNew(16, 16)
	px.Fill(imagesim.RGB{R: 100, G: 120, B: 140})
	cam := geo.Destination(la, brg, 500)
	return Image{
		FOV:                geo.FOV{Camera: cam, Direction: brg, Angle: 60, Radius: 100},
		Pixels:             px,
		TimestampCapturing: time.Date(2019, 2, 1, 8, 0, 0, 0, time.UTC).Add(time.Duration(brg) * time.Minute),
		WorkerID:           "w-1",
	}
}

func TestAddGetImage(t *testing.T) {
	s := memStore(t)
	id, err := s.AddImage(testImage(t, 10))
	if err != nil {
		t.Fatal(err)
	}
	if id == 0 {
		t.Fatal("zero ID")
	}
	img, err := s.GetImage(id)
	if err != nil {
		t.Fatal(err)
	}
	if img.Origin != OriginOriginal {
		t.Fatalf("default origin = %q", img.Origin)
	}
	if !img.Scene.Contains(img.FOV.Camera) {
		t.Fatal("scene MBR must contain camera")
	}
	if img.TimestampUploading.IsZero() {
		t.Fatal("upload timestamp not defaulted")
	}
	if _, err := s.GetImage(9999); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing image err = %v", err)
	}
	if s.NumImages() != 1 {
		t.Fatalf("NumImages = %d", s.NumImages())
	}
}

func TestAddImageValidation(t *testing.T) {
	s := memStore(t)
	bad := testImage(t, 0)
	bad.FOV.Angle = 0
	if _, err := s.AddImage(bad); !errors.Is(err, ErrInvalid) {
		t.Fatalf("invalid FOV err = %v", err)
	}
	bad = testImage(t, 0)
	bad.Pixels = nil
	if _, err := s.AddImage(bad); !errors.Is(err, ErrInvalid) {
		t.Fatalf("nil pixels err = %v", err)
	}
}

func TestSpatialTemporalSearch(t *testing.T) {
	s := memStore(t)
	var ids []uint64
	for i := 0; i < 10; i++ {
		id, err := s.AddImage(testImage(t, float64(i*36)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// A rect around the whole city finds everything.
	all, _ := s.SearchScene(context.Background(), geo.NewRect(geo.Destination(la, 315, 3000), geo.Destination(la, 135, 3000)))
	if len(all) != 10 {
		t.Fatalf("city-wide search found %d", len(all))
	}
	// Nearest to the camera of image 0.
	img0, _ := s.GetImage(ids[0])
	near, _ := s.SearchNearest(context.Background(), img0.FOV.Camera, 3)
	if len(near) != 3 || near[0] != ids[0] {
		t.Fatalf("nearest = %v", near)
	}
	// Temporal window covering the first three captures only.
	from := time.Date(2019, 2, 1, 8, 0, 0, 0, time.UTC)
	got, _ := s.SearchTime(context.Background(), from, from.Add(73*time.Minute))
	if len(got) != 3 {
		t.Fatalf("temporal window found %d", len(got))
	}
}

func TestFeaturesAndVisualSearch(t *testing.T) {
	s := memStore(t)
	var ids []uint64
	for i := 0; i < 20; i++ {
		id, _ := s.AddImage(testImage(t, float64(i*18)))
		ids = append(ids, id)
		vec := []float64{float64(i), float64(i), 0, 0}
		if err := s.PutFeature(id, "color_hist", vec); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.SearchVisual(context.Background(), "color_hist", []float64{5, 5, 0, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != ids[5] {
		t.Fatalf("visual top-1 = %+v, want id %d", got, ids[5])
	}
	exact, err := s.SearchVisualExact(context.Background(), "color_hist", []float64{5, 5, 0, 0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if exact[0].ID != ids[5] {
		t.Fatalf("exact top = %+v", exact)
	}
	within, err := s.SearchVisualRadius(context.Background(), "color_hist", []float64{5, 5, 0, 0}, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(within) == 0 || within[0].ID != ids[5] {
		t.Fatalf("radius results = %+v", within)
	}
	if _, err := s.SearchVisual(context.Background(), "nope", []float64{1}, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown kind err = %v", err)
	}
	if _, err := s.GetFeature(ids[0], "nope"); !errors.Is(err, ErrUnknownFeature) {
		t.Fatalf("unknown feature err = %v", err)
	}
	kinds := s.FeatureKinds(ids[0])
	if len(kinds) != 1 || kinds[0] != "color_hist" {
		t.Fatalf("kinds = %v", kinds)
	}
	if err := s.PutFeature(999, "x", []float64{1}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("feature for missing image err = %v", err)
	}
	if err := s.PutFeature(ids[0], "", nil); !errors.Is(err, ErrInvalid) {
		t.Fatalf("empty feature err = %v", err)
	}
}

func TestHybridSearch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HybridKinds = []string{string(feature.KindColorHist)}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 30; i++ {
		id, _ := s.AddImage(testImage(t, float64(i*12)))
		if err := s.PutFeature(id, string(feature.KindColorHist), []float64{float64(i), 1}); err != nil {
			t.Fatal(err)
		}
	}
	everywhere := geo.NewRect(geo.Destination(la, 315, 3000), geo.Destination(la, 135, 3000))
	ms, ok, err := s.SearchHybrid(context.Background(), string(feature.KindColorHist), everywhere, []float64{3, 1}, 2)
	if err != nil || !ok {
		t.Fatalf("hybrid search ok=%v err=%v", ok, err)
	}
	if len(ms) != 2 || ms[0].Dist != 0 {
		t.Fatalf("hybrid results = %+v", ms)
	}
	// A kind without a hybrid tree reports ok=false.
	if _, ok, err := s.SearchHybrid(context.Background(), "other", everywhere, []float64{1}, 2); ok || err != nil {
		t.Fatalf("missing hybrid: ok=%v err=%v", ok, err)
	}
}

func TestClassificationsAndAnnotations(t *testing.T) {
	s := memStore(t)
	id, _ := s.AddImage(testImage(t, 0))
	classID, err := s.CreateClassification("street_cleanliness", synth.ClassNames[:])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateClassification("street_cleanliness", synth.ClassNames[:]); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate classification err = %v", err)
	}
	if _, err := s.CreateClassification("", nil); !errors.Is(err, ErrInvalid) {
		t.Fatalf("empty classification err = %v", err)
	}
	c, err := s.ClassificationByName("street_cleanliness")
	if err != nil || c.ID != classID || len(c.Labels) != 5 {
		t.Fatalf("by name: %+v err=%v", c, err)
	}
	ann := Annotation{
		ImageID: id, ClassificationID: classID, Label: int(synth.Encampment),
		Confidence: 0.9, Source: SourceMachine,
		AnnotatedAt: time.Date(2019, 2, 2, 0, 0, 0, 0, time.UTC),
	}
	if err := s.Annotate(ann); err != nil {
		t.Fatal(err)
	}
	bad := ann
	bad.Label = 99
	if err := s.Annotate(bad); !errors.Is(err, ErrUnknownLabel) {
		t.Fatalf("bad label err = %v", err)
	}
	bad = ann
	bad.ImageID = 999
	if err := s.Annotate(bad); !errors.Is(err, ErrNotFound) {
		t.Fatalf("bad image err = %v", err)
	}
	bad = ann
	bad.ClassificationID = 999
	if err := s.Annotate(bad); !errors.Is(err, ErrNotFound) {
		t.Fatalf("bad classification err = %v", err)
	}
	got := s.AnnotationsFor(id)
	if len(got) != 1 || got[0].Label != int(synth.Encampment) {
		t.Fatalf("annotations = %+v", got)
	}
	byLabel := s.ImagesByLabel(classID, int(synth.Encampment))
	if len(byLabel) != 1 || byLabel[0] != id {
		t.Fatalf("by label = %v", byLabel)
	}
	if got := s.ImagesByLabel(classID, int(synth.Clean)); len(got) != 0 {
		t.Fatalf("unexpected clean images: %v", got)
	}
	all := s.Classifications()
	if len(all) != 1 || all[0].Name != "street_cleanliness" {
		t.Fatalf("classifications = %+v", all)
	}
}

func TestKeywordsAndTextSearch(t *testing.T) {
	s := memStore(t)
	id1, _ := s.AddImage(testImage(t, 0))
	id2, _ := s.AddImage(testImage(t, 90))
	if err := s.AddKeywords(id1, []string{"tent", "homeless"}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddKeywords(id2, []string{"trash"}); err != nil {
		t.Fatal(err)
	}
	got, _ := s.SearchText(context.Background(), []string{"tent"})
	if len(got) != 1 || got[0].ID != id1 {
		t.Fatalf("text search = %+v", got)
	}
	all, _ := s.SearchTextAll(context.Background(), []string{"tent", "homeless"})
	if len(all) != 1 || all[0].ID != id1 {
		t.Fatalf("conjunctive = %+v", all)
	}
	if kw := s.KeywordsFor(id1); len(kw) != 2 {
		t.Fatalf("keywords = %v", kw)
	}
	if err := s.AddKeywords(999, []string{"x"}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("keywords for missing err = %v", err)
	}
	if err := s.AddKeywords(id1, nil); !errors.Is(err, ErrInvalid) {
		t.Fatalf("empty keywords err = %v", err)
	}
}

func TestDeleteImageCascades(t *testing.T) {
	s := memStore(t)
	id, _ := s.AddImage(testImage(t, 0))
	classID, _ := s.CreateClassification("c", []string{"a", "b"})
	_ = s.PutFeature(id, "f", []float64{1, 2})
	_ = s.Annotate(Annotation{ImageID: id, ClassificationID: classID, Label: 0, Confidence: 1})
	_ = s.AddKeywords(id, []string{"tent"})
	if err := s.DeleteImage(id); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetImage(id); !errors.Is(err, ErrNotFound) {
		t.Fatal("image still present")
	}
	if got, _ := s.SearchText(context.Background(), []string{"tent"}); len(got) != 0 {
		t.Fatal("text index not cleaned")
	}
	if got := s.ImagesByLabel(classID, 0); len(got) != 0 {
		t.Fatal("label index not cleaned")
	}
	if got, err := s.SearchVisual(context.Background(), "f", []float64{1, 2}, 1); err != nil || len(got) != 0 {
		t.Fatalf("visual index not cleaned: %v %v", got, err)
	}
	if err := s.DeleteImage(id); !errors.Is(err, ErrNotFound) {
		t.Fatal("double delete accepted")
	}
}

func TestUsersAndAPIKeys(t *testing.T) {
	s := memStore(t)
	uid, err := s.CreateUser("LASAN", "government")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateUser("", ""); !errors.Is(err, ErrInvalid) {
		t.Fatal("empty user accepted")
	}
	key, err := s.IssueAPIKey(uid, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(key) != 32 {
		t.Fatalf("key length = %d", len(key))
	}
	u, err := s.Authenticate(key)
	if err != nil || u.ID != uid || u.Name != "LASAN" {
		t.Fatalf("authenticate: %+v err=%v", u, err)
	}
	if _, err := s.Authenticate("bogus"); !errors.Is(err, ErrNotFound) {
		t.Fatal("bogus key accepted")
	}
	if _, err := s.IssueAPIKey(999, time.Now()); !errors.Is(err, ErrNotFound) {
		t.Fatal("key for missing user accepted")
	}
	if _, err := s.GetUser(uid); err != nil {
		t.Fatal(err)
	}
}

func populate(t *testing.T, s *Store, n int) []uint64 {
	t.Helper()
	classID, err := s.CreateClassification("street_cleanliness", synth.ClassNames[:])
	if err != nil {
		t.Fatal(err)
	}
	var ids []uint64
	for i := 0; i < n; i++ {
		id, err := s.AddImage(testImage(t, float64(i*7%360)))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.PutFeature(id, "color_hist", []float64{float64(i), 1, 2}); err != nil {
			t.Fatal(err)
		}
		if err := s.Annotate(Annotation{ImageID: id, ClassificationID: classID, Label: i % 5, Confidence: 1, Source: SourceHuman}); err != nil {
			t.Fatal(err)
		}
		if err := s.AddKeywords(id, []string{fmt.Sprintf("kw%d", i%3)}); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	return ids
}

func TestWALRecovery(t *testing.T) {
	dir := t.TempDir()
	s := diskStore(t, dir)
	ids := populate(t, s, 25)
	uid, _ := s.CreateUser("usc", "research")
	key, _ := s.IssueAPIKey(uid, time.Unix(1e9, 0).UTC())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := diskStore(t, dir)
	defer r.Close()
	if r.NumImages() != 25 {
		t.Fatalf("recovered %d images", r.NumImages())
	}
	img, err := r.GetImage(ids[3])
	if err != nil {
		t.Fatal(err)
	}
	if img.Pixels == nil || img.Pixels.W != 16 {
		t.Fatal("pixels not recovered")
	}
	vec, err := r.GetFeature(ids[3], "color_hist")
	if err != nil || vec[0] != 3 {
		t.Fatalf("feature not recovered: %v %v", vec, err)
	}
	c, err := r.ClassificationByName("street_cleanliness")
	if err != nil {
		t.Fatal(err)
	}
	if got := r.ImagesByLabel(c.ID, 2); len(got) != 5 {
		t.Fatalf("label index not rebuilt: %v", got)
	}
	if got, _ := r.SearchText(context.Background(), []string{"kw1"}); len(got) == 0 {
		t.Fatal("text index not rebuilt")
	}
	if got, err := r.SearchVisual(context.Background(), "color_hist", []float64{3, 1, 2}, 1); err != nil || got[0].ID != ids[3] {
		t.Fatalf("visual index not rebuilt: %v %v", got, err)
	}
	if u, err := r.Authenticate(key); err != nil || u.ID != uid {
		t.Fatalf("api key not recovered: %v", err)
	}
	// New writes after recovery get fresh IDs.
	newID, err := r.AddImage(testImage(t, 42))
	if err != nil {
		t.Fatal(err)
	}
	for _, old := range ids {
		if newID == old {
			t.Fatal("ID collision after recovery")
		}
	}
}

func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	s := diskStore(t, dir)
	populate(t, s, 10)
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot writes land in the fresh WAL.
	id, err := s.AddImage(testImage(t, 200))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := diskStore(t, dir)
	defer r.Close()
	if r.NumImages() != 11 {
		t.Fatalf("recovered %d images after snapshot+wal", r.NumImages())
	}
	if _, err := r.GetImage(id); err != nil {
		t.Fatal("post-snapshot image lost")
	}
	// Snapshot twice in a row is fine.
	if err := r.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteSurvivesRecovery(t *testing.T) {
	dir := t.TempDir()
	s := diskStore(t, dir)
	ids := populate(t, s, 5)
	if err := s.DeleteImage(ids[2]); err != nil {
		t.Fatal(err)
	}
	s.Close()
	r := diskStore(t, dir)
	defer r.Close()
	if r.NumImages() != 4 {
		t.Fatalf("recovered %d images", r.NumImages())
	}
	if _, err := r.GetImage(ids[2]); !errors.Is(err, ErrNotFound) {
		t.Fatal("deleted image resurrected")
	}
}

func TestClosedStoreRejectsWrites(t *testing.T) {
	s, err := Open(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddImage(testImage(t, 0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close err = %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("double close should be nil")
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	s := memStore(t)
	populate(t, s, 10)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				img := testImage(t, float64((w*20+i)%360))
				if _, err := s.AddImage(img); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s.SearchScene(context.Background(), geo.NewRect(geo.Destination(la, 315, 3000), geo.Destination(la, 135, 3000)))
				s.SearchText(context.Background(), []string{"kw1"})
				s.NumImages()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if s.NumImages() != 90 {
		t.Fatalf("NumImages = %d, want 90", s.NumImages())
	}
}

func TestImageIDsSorted(t *testing.T) {
	s := memStore(t)
	populate(t, s, 7)
	ids := s.ImageIDs()
	if len(ids) != 7 {
		t.Fatalf("ids = %v", ids)
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatal("ids not ascending")
		}
	}
}

func testFrame(t *testing.T, brg float64, at time.Time) Frame {
	t.Helper()
	px := imagesim.MustNew(16, 16)
	cam := geo.Destination(la, brg, 400)
	return Frame{
		Pixels:     px,
		FOV:        geo.FOV{Camera: cam, Direction: brg, Angle: 70, Radius: 150},
		CapturedAt: at,
		Keywords:   []string{"drone"},
	}
}

func TestAddVideoAndFrames(t *testing.T) {
	s := memStore(t)
	base := time.Date(2019, 4, 1, 9, 0, 0, 0, time.UTC)
	frames := []Frame{
		testFrame(t, 0, base),
		testFrame(t, 10, base.Add(2*time.Second)),
		testFrame(t, 20, base.Add(4*time.Second)),
	}
	vid, frameIDs, err := s.AddVideo("survey flight", "drone-1", frames)
	if err != nil {
		t.Fatal(err)
	}
	if len(frameIDs) != 3 {
		t.Fatalf("frame ids = %v", frameIDs)
	}
	v, err := s.GetVideo(vid)
	if err != nil {
		t.Fatal(err)
	}
	if v.Description != "survey flight" || len(v.FrameIDs) != 3 {
		t.Fatalf("video = %+v", v)
	}
	if !v.Start.Equal(base) || !v.End.Equal(base.Add(4*time.Second)) {
		t.Fatalf("video time bounds = %v..%v", v.Start, v.End)
	}
	// Frames are full images: spatial, temporal, and text queries see them.
	for i, id := range frameIDs {
		img, err := s.GetImage(id)
		if err != nil {
			t.Fatal(err)
		}
		if img.VideoID != vid || img.FrameIndex != i {
			t.Fatalf("frame %d linkage = %+v", i, img)
		}
	}
	if got, _ := s.SearchTime(context.Background(), base, base.Add(2*time.Second)); len(got) != 2 {
		t.Fatalf("temporal frame query = %v", got)
	}
	if got, _ := s.SearchText(context.Background(), []string{"drone"}); len(got) != 3 {
		t.Fatalf("text frame query = %v", got)
	}
	if _, err := s.GetVideo(9999); !errors.Is(err, ErrNotFound) {
		t.Fatal("missing video err wrong")
	}
	if vids := s.Videos(); len(vids) != 1 || vids[0].ID != vid {
		t.Fatalf("videos = %+v", vids)
	}
}

func TestAddVideoValidation(t *testing.T) {
	s := memStore(t)
	if _, _, err := s.AddVideo("x", "w", nil); !errors.Is(err, ErrInvalid) {
		t.Fatal("empty frames accepted")
	}
	bad := testFrame(t, 0, time.Now())
	bad.Pixels = nil
	if _, _, err := s.AddVideo("x", "w", []Frame{bad}); !errors.Is(err, ErrInvalid) {
		t.Fatal("nil pixels accepted")
	}
	bad = testFrame(t, 0, time.Now())
	bad.FOV.Radius = -1
	if _, _, err := s.AddVideo("x", "w", []Frame{bad}); !errors.Is(err, ErrInvalid) {
		t.Fatal("bad FOV accepted")
	}
	// Validation failures must not leave partial state behind.
	if s.NumImages() != 0 {
		t.Fatalf("partial video state: %d images", s.NumImages())
	}
}

func TestVideoSurvivesRecovery(t *testing.T) {
	dir := t.TempDir()
	s := diskStore(t, dir)
	base := time.Date(2019, 4, 1, 9, 0, 0, 0, time.UTC)
	vid, frameIDs, err := s.AddVideo("flight", "drone-1", []Frame{
		testFrame(t, 0, base), testFrame(t, 5, base.Add(time.Second)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// A second video after the snapshot exercises WAL replay too.
	vid2, _, err := s.AddVideo("flight 2", "drone-2", []Frame{testFrame(t, 30, base.Add(time.Hour))})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	r := diskStore(t, dir)
	defer r.Close()
	v, err := r.GetVideo(vid)
	if err != nil || len(v.FrameIDs) != 2 {
		t.Fatalf("video 1 recovery: %+v err=%v", v, err)
	}
	if _, err := r.GetVideo(vid2); err != nil {
		t.Fatalf("video 2 recovery: %v", err)
	}
	if _, err := r.GetImage(frameIDs[0]); err != nil {
		t.Fatalf("frame recovery: %v", err)
	}
}

func TestAddAugmented(t *testing.T) {
	s := memStore(t)
	parentID, err := s.AddImage(testImage(t, 45))
	if err != nil {
		t.Fatal(err)
	}
	aug := imagesim.MustNew(16, 16)
	augID, err := s.AddAugmented(parentID, aug)
	if err != nil {
		t.Fatal(err)
	}
	img, err := s.GetImage(augID)
	if err != nil {
		t.Fatal(err)
	}
	parent, _ := s.GetImage(parentID)
	if img.Origin != OriginAugmented || img.ParentID != parentID {
		t.Fatalf("augmented = %+v", img)
	}
	if img.FOV != parent.FOV || !img.TimestampCapturing.Equal(parent.TimestampCapturing) {
		t.Fatal("augmented must inherit spatial/temporal descriptors")
	}
	got := s.AugmentedOf(parentID)
	if len(got) != 1 || got[0] != augID {
		t.Fatalf("AugmentedOf = %v", got)
	}
	if _, err := s.AddAugmented(9999, aug); !errors.Is(err, ErrNotFound) {
		t.Fatal("missing parent accepted")
	}
	if _, err := s.AddAugmented(parentID, nil); !errors.Is(err, ErrInvalid) {
		t.Fatal("nil pixels accepted")
	}
}

func TestCampaigns(t *testing.T) {
	s := memStore(t)
	region := geo.NewRect(geo.Destination(la, 315, 1000), geo.Destination(la, 135, 1000))
	id, err := s.CreateCampaign(CampaignRec{
		Name: "dtla-sweep", Region: region, TargetCoverage: 0.9,
		CreatedAt: time.Date(2019, 6, 1, 0, 0, 0, 0, time.UTC),
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.GetCampaign(id)
	if err != nil || c.Name != "dtla-sweep" {
		t.Fatalf("campaign = %+v err=%v", c, err)
	}
	if _, err := s.GetCampaign(9999); !errors.Is(err, ErrNotFound) {
		t.Fatal("missing campaign err wrong")
	}
	if got := s.Campaigns(); len(got) != 1 {
		t.Fatalf("campaigns = %+v", got)
	}
	// Validation.
	if _, err := s.CreateCampaign(CampaignRec{Region: region, TargetCoverage: 0.5}); !errors.Is(err, ErrInvalid) {
		t.Fatal("nameless campaign accepted")
	}
	if _, err := s.CreateCampaign(CampaignRec{Name: "x", TargetCoverage: 0.5}); !errors.Is(err, ErrInvalid) {
		t.Fatal("degenerate region accepted")
	}
	if _, err := s.CreateCampaign(CampaignRec{Name: "x", Region: region, TargetCoverage: 0}); !errors.Is(err, ErrInvalid) {
		t.Fatal("zero target accepted")
	}
	// Images attach to campaigns.
	img := testImage(t, 20)
	img.CampaignID = id
	imgID, err := s.AddImage(img)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.CampaignImages(id); len(got) != 1 || got[0] != imgID {
		t.Fatalf("campaign images = %v", got)
	}
	if got := s.CampaignImages(9999); len(got) != 0 {
		t.Fatal("phantom campaign images")
	}
}

func TestCampaignSurvivesRecovery(t *testing.T) {
	dir := t.TempDir()
	s := diskStore(t, dir)
	region := geo.NewRect(geo.Destination(la, 315, 500), geo.Destination(la, 135, 500))
	id, err := s.CreateCampaign(CampaignRec{Name: "c", Region: region, TargetCoverage: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	id2, err := s.CreateCampaign(CampaignRec{Name: "c2", Region: region, TargetCoverage: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	r := diskStore(t, dir)
	defer r.Close()
	if _, err := r.GetCampaign(id); err != nil {
		t.Fatalf("snapshot campaign lost: %v", err)
	}
	if _, err := r.GetCampaign(id2); err != nil {
		t.Fatalf("wal campaign lost: %v", err)
	}
}

func TestFOVsInRegion(t *testing.T) {
	s := memStore(t)
	for i := 0; i < 8; i++ {
		if _, err := s.AddImage(testImage(t, float64(i*45))); err != nil {
			t.Fatal(err)
		}
	}
	everywhere := geo.NewRect(geo.Destination(la, 315, 3000), geo.Destination(la, 135, 3000))
	if got := s.FOVsInRegion(everywhere); len(got) != 8 {
		t.Fatalf("city-wide FOVs = %d", len(got))
	}
	nowhere := geo.NewRect(geo.Destination(la, 0, 50000), geo.Destination(la, 0, 51000))
	if got := s.FOVsInRegion(nowhere); len(got) != 0 {
		t.Fatalf("remote FOVs = %d", len(got))
	}
}

func TestMemoryStoreSnapshotIsNoop(t *testing.T) {
	s := memStore(t)
	if err := s.Snapshot(); err != nil {
		t.Fatalf("memory snapshot err = %v", err)
	}
}

func TestFeatureKindsUnknownImageEmpty(t *testing.T) {
	s := memStore(t)
	if kinds := s.FeatureKinds(999); len(kinds) != 0 {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestExplicitUploadTimestampPreserved(t *testing.T) {
	s := memStore(t)
	img := testImage(t, 5)
	up := img.TimestampCapturing.Add(2 * time.Hour)
	img.TimestampUploading = up
	id, err := s.AddImage(img)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := s.GetImage(id)
	if !got.TimestampUploading.Equal(up) {
		t.Fatalf("upload time = %v, want %v", got.TimestampUploading, up)
	}
}
