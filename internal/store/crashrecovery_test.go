package store

import (
	"encoding/binary"
	"encoding/gob"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/imagesim"
)

// tinyImage keeps WAL frames small so the every-offset sweep stays fast.
func tinyImage(t *testing.T, brg float64) Image {
	t.Helper()
	px := imagesim.MustNew(2, 2)
	px.Fill(imagesim.RGB{R: 10, G: 20, B: 30})
	cam := geo.Destination(la, brg, 500)
	return Image{
		FOV:                geo.FOV{Camera: cam, Direction: brg, Angle: 60, Radius: 100},
		Pixels:             px,
		TimestampCapturing: time.Date(2019, 2, 1, 8, 0, 0, 0, time.UTC).Add(time.Duration(brg) * time.Minute),
		WorkerID:           "w-1",
	}
}

// TestReopenMutateCycles is the regression test for the v1 WAL's fatal
// append-after-reopen bug: each session appended a fresh gob stream to
// the same file, so after two crash→reopen→mutate cycles replay died with
// "gob: duplicate type received" and the store was permanently locked
// out. Cycles alternate a simulated crash (store abandoned without Close)
// with a clean shutdown.
func TestReopenMutateCycles(t *testing.T) {
	dir := t.TempDir()
	total := 0
	for cycle := 0; cycle < 4; cycle++ {
		s := diskStore(t, dir)
		if got := s.NumImages(); got != total {
			t.Fatalf("cycle %d: recovered %d images, want %d", cycle, got, total)
		}
		for i := 0; i < 3; i++ {
			if _, err := s.AddImage(tinyImage(t, float64(cycle*40+i*10))); err != nil {
				t.Fatalf("cycle %d: add: %v", cycle, err)
			}
			total++
		}
		if cycle%2 == 1 {
			if err := s.Close(); err != nil {
				t.Fatalf("cycle %d: close: %v", cycle, err)
			}
		}
		// Even cycles: crash — walk away without Close.
	}
	r := diskStore(t, dir)
	defer r.Close()
	if got := r.NumImages(); got != total {
		t.Fatalf("final recovery: %d images, want %d", got, total)
	}
}

// walState is the observable state fingerprint used by the offset-sweep
// tests to check that recovery restores exactly the durable prefix.
type walState struct {
	walSize  int64
	images   int
	classes  int
	anns     int
	keywords int
	features int
	hasUser  bool
}

func fingerprint(s *Store, probeImg, probeUser uint64) walState {
	st := walState{
		images:   s.NumImages(),
		classes:  len(s.Classifications()),
		anns:     len(s.AnnotationsFor(probeImg)),
		keywords: len(s.KeywordsFor(probeImg)),
		features: len(s.FeatureKinds(probeImg)),
	}
	if probeUser != 0 {
		_, err := s.GetUser(probeUser)
		st.hasUser = err == nil
	}
	return st
}

// recordedWorkload drives a mixed op sequence against a SyncEveryWrite
// store and records, after every synced op, the WAL size and the expected
// observable state. Returns the checkpoints, the final WAL bytes, and the
// probe IDs.
func recordedWorkload(t *testing.T) (cps []walState, wal []byte, probeImg, probeUser uint64) {
	t.Helper()
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.Dir = dir
	cfg.Engine = EngineSnapshot
	cfg.SyncEveryWrite = true
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, walFile)
	record := func() {
		info, err := os.Stat(walPath)
		if err != nil {
			t.Fatal(err)
		}
		cp := fingerprint(s, probeImg, probeUser)
		cp.walSize = info.Size()
		cps = append(cps, cp)
	}
	record() // header-only log, empty state
	classID, err := s.CreateClassification("scene", []string{"clean", "littered"})
	if err != nil {
		t.Fatal(err)
	}
	record()
	probeImg, err = s.AddImage(tinyImage(t, 10))
	if err != nil {
		t.Fatal(err)
	}
	record()
	id2, err := s.AddImage(tinyImage(t, 20))
	if err != nil {
		t.Fatal(err)
	}
	record()
	if err := s.PutFeature(probeImg, "hist", []float64{0.25, 0.75}); err != nil {
		t.Fatal(err)
	}
	record()
	if err := s.Annotate(Annotation{ImageID: probeImg, ClassificationID: classID, Label: 1, Confidence: 1, Source: SourceHuman}); err != nil {
		t.Fatal(err)
	}
	record()
	if err := s.AddKeywords(probeImg, []string{"pole", "sidewalk"}); err != nil {
		t.Fatal(err)
	}
	record()
	probeUser, err = s.CreateUser("w-1", "worker")
	if err != nil {
		t.Fatal(err)
	}
	// probeUser became knowable only now; refresh the hasUser field of no
	// prior checkpoint (it was false there by construction).
	record()
	if err := s.DeleteImage(id2); err != nil {
		t.Fatal(err)
	}
	record()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	wal, err = os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(wal)) != cps[len(cps)-1].walSize {
		t.Fatalf("final WAL size %d != last checkpoint %d", len(wal), cps[len(cps)-1].walSize)
	}
	return cps, wal, probeImg, probeUser
}

// TestKillAtEveryOffset is the crash-recovery property test: the recorded
// WAL is cut at every byte offset and Open must always succeed,
// recovering exactly the synced prefix — every record whose final byte
// made it to disk, nothing after the cut.
func TestKillAtEveryOffset(t *testing.T) {
	cps, wal, probeImg, probeUser := recordedWorkload(t)
	// Recovery fsyncs during repair, so each offset costs real I/O; shard
	// the sweep across workers with private directories.
	workers := 8 * runtime.GOMAXPROCS(0) // I/O-bound: overlap the per-offset fsyncs
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		dir := t.TempDir()
		wg.Add(1)
		go func(w int, dir string) {
			defer wg.Done()
			walPath := filepath.Join(dir, walFile)
			cfg := DefaultConfig()
			cfg.Dir = dir
			cfg.Engine = EngineSnapshot
			for k := w; k <= len(wal); k += workers {
				if err := os.WriteFile(walPath, wal[:k], 0o644); err != nil {
					t.Error(err)
					return
				}
				r, err := Open(cfg)
				if err != nil {
					t.Errorf("offset %d: Open failed: %v", k, err)
					return
				}
				want := cps[0]
				for _, cp := range cps {
					if cp.walSize <= int64(k) {
						want = cp
					}
				}
				got := fingerprint(r, probeImg, probeUser)
				got.walSize = want.walSize
				if got != want {
					t.Errorf("offset %d: recovered %+v, want %+v", k, got, want)
				}
				r.Close()
			}
		}(w, dir)
	}
	wg.Wait()
}

// TestFaultInjectedTornWrites drives the store's own append path through
// the failpoint backend: a cut or short write mid-workload must, on
// reopen, yield exactly the records appended before the fault.
func TestFaultInjectedTornWrites(t *testing.T) {
	for _, tc := range []struct {
		name string
		mode faultMode
	}{
		{"cut", faultCut},
		{"short-write", faultShortWrite},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			// Trip partway through some frame a few records in; the exact
			// frame boundary is irrelevant — recovery must keep whole
			// frames below the fault and drop the torn one.
			restore := installFault(tc.mode, walHeaderSize+2500)
			defer restore()
			cfg := DefaultConfig()
			cfg.Dir = dir
			cfg.SyncEveryWrite = true
			s, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			committed := 0
			for i := 0; i < 50; i++ {
				if _, err := s.AddImage(tinyImage(t, float64(i*7%360))); err != nil {
					if !errors.Is(err, errFaultInjected) {
						t.Fatalf("add %d: %v", i, err)
					}
					break
				}
				committed++
			}
			if committed == 0 || committed == 50 {
				t.Fatalf("fault never triggered mid-workload (committed=%d)", committed)
			}
			restore()
			r := diskStore(t, dir)
			defer r.Close()
			if got := r.NumImages(); got != committed {
				t.Fatalf("recovered %d images, want %d committed before fault", got, committed)
			}
			// Torn tail was repaired in place: the store must stay
			// appendable across another cycle.
			if _, err := r.AddImage(tinyImage(t, 355)); err != nil {
				t.Fatalf("append after repair: %v", err)
			}
		})
	}
}

// TestBitFlipSurfacesCorruption flips one bit early in the log (with
// intact records behind it) and requires Open to fail with ErrWALCorrupt
// rather than silently dropping or misreading data. Damage confined to
// the final frame, by contrast, is indistinguishable from a torn append
// and is repaired away.
func TestBitFlipSurfacesCorruption(t *testing.T) {
	build := func(t *testing.T, flipOffset int64) string {
		dir := t.TempDir()
		if flipOffset >= 0 {
			restore := installFault(faultBitFlip, flipOffset)
			defer restore()
		}
		s := snapStore(t, dir)
		for i := 0; i < 4; i++ {
			if _, err := s.AddImage(tinyImage(t, float64(i*30))); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	t.Run("mid-log", func(t *testing.T) {
		// Flip inside the first frame's payload; three valid frames follow.
		dir := build(t, walHeaderSize+walFrameHeaderSize+40)
		cfg := DefaultConfig()
		cfg.Dir = dir
		cfg.Engine = EngineSnapshot
		_, err := Open(cfg)
		if !errors.Is(err, ErrWALCorrupt) {
			t.Fatalf("Open = %v, want ErrWALCorrupt", err)
		}
	})

	t.Run("final-frame", func(t *testing.T) {
		dir := build(t, -1)
		walPath := filepath.Join(dir, walFile)
		data, err := os.ReadFile(walPath)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-3] ^= 0x40
		if err := os.WriteFile(walPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
		r := snapStore(t, dir)
		defer r.Close()
		if got := r.NumImages(); got != 3 {
			t.Fatalf("recovered %d images after final-frame damage, want 3", got)
		}
	})
}

// TestSnapshotCrashDiscardsStaleWAL drives the exact double-apply
// interleaving: Snapshot() installs the new snapshot, then the failpoint
// kills the process before the new WAL replaces the old one. Recovery
// must see the old log's stale generation and discard it — replaying it
// would re-apply ops the snapshot already contains.
func TestSnapshotCrashDiscardsStaleWAL(t *testing.T) {
	dir := t.TempDir()
	s := snapStore(t, dir)
	id1, err := s.AddImage(tinyImage(t, 10))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(); err != nil { // generation 1
		t.Fatal(err)
	}
	id2, err := s.AddImage(tinyImage(t, 20))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddKeywords(id2, []string{"lamp"}); err != nil {
		t.Fatal(err)
	}
	// Crash between snapshot install and WAL reset: the fault trips on the
	// first header byte of the replacement log.
	restore := installFault(faultCut, 0)
	err = s.Snapshot()
	restore()
	if err == nil {
		t.Fatal("Snapshot survived injected fault")
	}
	// On-disk crash image: generation-2 snapshot plus the old generation-1
	// WAL still holding id2's add-image and add-keywords ops.
	walData, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	if gen := binary.LittleEndian.Uint64(walData[8:16]); gen != 1 || int64(len(walData)) <= walHeaderSize {
		t.Fatalf("crash image wrong: wal gen %d size %d, want stale gen-1 log with ops", gen, len(walData))
	}

	r := snapStore(t, dir)
	defer r.Close()
	if got := r.NumImages(); got != 2 {
		t.Fatalf("recovered %d images, want 2", got)
	}
	if _, err := r.GetImage(id1); err != nil {
		t.Fatal(err)
	}
	// The tell: replaying the stale log would double-apply, duplicating
	// id2's keywords (or failing outright on the duplicate image ID).
	if kw := r.KeywordsFor(id2); len(kw) != 1 || kw[0] != "lamp" {
		t.Fatalf("keywords for %d = %v, want exactly [lamp]", id2, kw)
	}
	// The recovered store keeps its durability: new writes survive another
	// reopen.
	if _, err := r.AddImage(tinyImage(t, 30)); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2 := snapStore(t, dir)
	defer r2.Close()
	if got := r2.NumImages(); got != 3 {
		t.Fatalf("post-recovery write lost: %d images, want 3", got)
	}
}

// TestLegacyWALMigration forges a v1 log (one continuous gob stream, the
// way the old engine wrote it), opens the store, and checks the data is
// recovered and the file rewritten as v2 — after which append and reopen
// behave like any other v2 log.
func TestLegacyWALMigration(t *testing.T) {
	forgeLegacy := func(t *testing.T, dir string, truncateBy int64) {
		t.Helper()
		f, err := os.Create(filepath.Join(dir, walFile))
		if err != nil {
			t.Fatal(err)
		}
		enc := gob.NewEncoder(f)
		for i := 1; i <= 3; i++ {
			img := tinyImage(t, float64(i*20))
			img.ID = uint64(i)
			img.Scene = img.FOV.SceneLocation()
			if err := enc.Encode(walOp{Kind: opAddImage, Image: &img}); err != nil {
				t.Fatal(err)
			}
		}
		if err := enc.Encode(walOp{Kind: opAddKeywords, Keyword: &keywordOp{ImageID: 1, Words: []string{"legacy"}}}); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		if truncateBy > 0 {
			info, err := os.Stat(filepath.Join(dir, walFile))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(filepath.Join(dir, walFile), info.Size()-truncateBy); err != nil {
				t.Fatal(err)
			}
		}
	}

	t.Run("clean", func(t *testing.T) {
		dir := t.TempDir()
		forgeLegacy(t, dir, 0)
		s := snapStore(t, dir)
		if got := s.NumImages(); got != 3 {
			t.Fatalf("migrated %d images, want 3", got)
		}
		if kw := s.KeywordsFor(1); len(kw) != 1 || kw[0] != "legacy" {
			t.Fatalf("keywords = %v, want [legacy]", kw)
		}
		// The file was rewritten in the v2 format.
		data, err := os.ReadFile(filepath.Join(dir, walFile))
		if err != nil {
			t.Fatal(err)
		}
		if len(data) < walHeaderSize || data[0] != walMagic[0] {
			t.Fatalf("WAL not migrated to v2 (first bytes %x)", data[:8])
		}
		// And append-after-reopen — the operation that killed v1 — works.
		if _, err := s.AddImage(tinyImage(t, 300)); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		r := snapStore(t, dir)
		defer r.Close()
		if got := r.NumImages(); got != 4 {
			t.Fatalf("post-migration reopen: %d images, want 4", got)
		}
	})

	t.Run("torn-tail", func(t *testing.T) {
		dir := t.TempDir()
		forgeLegacy(t, dir, 10) // cuts into the final (keywords) record
		s := snapStore(t, dir)
		defer s.Close()
		if got := s.NumImages(); got != 3 {
			t.Fatalf("migrated %d images from torn legacy log, want 3", got)
		}
		if kw := s.KeywordsFor(1); len(kw) != 0 {
			t.Fatalf("torn final record resurrected: keywords = %v", kw)
		}
	})
}

// TestSnapshotPlusWALOffsetSweep repeats the kill-at-every-offset check
// for a log that rides on top of a snapshot, ensuring generation handling
// and prefix recovery compose.
func TestSnapshotPlusWALOffsetSweep(t *testing.T) {
	src := t.TempDir()
	cfg := DefaultConfig()
	cfg.Dir = src
	cfg.Engine = EngineSnapshot
	cfg.SyncEveryWrite = true
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.AddImage(tinyImage(t, float64(i*15))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(src, walFile)
	sizes := []int64{walHeaderSize}
	for i := 0; i < 3; i++ {
		if _, err := s.AddImage(tinyImage(t, float64(100+i*15))); err != nil {
			t.Fatal(err)
		}
		info, err := os.Stat(walPath)
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, info.Size())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	wal, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := os.ReadFile(filepath.Join(src, snapshotFile))
	if err != nil {
		t.Fatal(err)
	}

	workers := 8 * runtime.GOMAXPROCS(0) // I/O-bound: overlap the per-offset fsyncs
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		dir := t.TempDir()
		wg.Add(1)
		go func(w int, dir string) {
			defer wg.Done()
			if err := os.WriteFile(filepath.Join(dir, snapshotFile), snap, 0o644); err != nil {
				t.Error(err)
				return
			}
			rcfg := DefaultConfig()
			rcfg.Dir = dir
			rcfg.Engine = EngineSnapshot
			for k := w; k <= len(wal); k += workers {
				if err := os.WriteFile(filepath.Join(dir, walFile), wal[:k], 0o644); err != nil {
					t.Error(err)
					return
				}
				r, err := Open(rcfg)
				if err != nil {
					t.Errorf("offset %d: Open failed: %v", k, err)
					return
				}
				want := 3 // snapshot baseline
				for _, sz := range sizes {
					if sz <= int64(k) && sz > walHeaderSize {
						want++
					}
				}
				if got := r.NumImages(); got != want {
					t.Errorf("offset %d: recovered %d images, want %d", k, got, want)
				}
				r.Close()
			}
		}(w, dir)
	}
	wg.Wait()
}
