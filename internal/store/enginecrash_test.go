package store

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
)

// Segment-engine crash sweeps. Flush and compaction each write three
// kinds of files — the segment blob, the MANIFEST root pointer, and (for
// flush) the next WAL generation. Each sweep kills the write at every
// byte offset of exactly one of those files and requires recovery to
// come back with precisely the committed corpus: a torn output is
// repaired or discarded, never silently corrupted, and never takes
// committed rows with it. Flush and compaction move no new data into the
// store, so the expected corpus is identical at every offset — the
// invariant that makes an exhaustive sweep cheap to state and impossible
// to fudge.
//
// The sweeps shard offsets across worker goroutines, so they cannot use
// installFaultMatch directly (the newWALBackend hook is process-global
// and a per-worker install/restore would race). Instead one dispatching
// hook is installed per sweep; workers claim their private directory in
// a registry and the hook wraps only files inside a claimed directory.

// sweepFaults routes the global failpoint hook per directory, letting
// concurrent sweep workers tear different stores at different offsets.
type sweepFaults struct {
	mu    sync.Mutex
	byDir map[string]sweepSpec
}

type sweepSpec struct {
	prefix string
	offset int64
}

// install claims every file under dir whose base name has prefix.
func (r *sweepFaults) install(dir, prefix string, offset int64) {
	r.mu.Lock()
	r.byDir[dir] = sweepSpec{prefix: prefix, offset: offset}
	r.mu.Unlock()
}

func (r *sweepFaults) clear(dir string) {
	r.mu.Lock()
	delete(r.byDir, dir)
	r.mu.Unlock()
}

// hookSweepFaults swaps in the dispatching backend hook and returns the
// registry plus a restore func. Must bracket all sweep goroutines.
func hookSweepFaults() (*sweepFaults, func()) {
	reg := &sweepFaults{byDir: make(map[string]sweepSpec)}
	prev := newWALBackend
	newWALBackend = func(f *os.File) walBackend {
		reg.mu.Lock()
		spec, ok := reg.byDir[filepath.Dir(f.Name())]
		reg.mu.Unlock()
		if !ok || !strings.HasPrefix(filepath.Base(f.Name()), spec.prefix) {
			return f
		}
		return &faultFile{f: f, mode: faultCut, offset: spec.offset}
	}
	return reg, func() { newWALBackend = prev }
}

// segCrashBuild populates a fresh segment store with n tiny images and
// returns it still open.
func segCrashBuild(t *testing.T, dir string, n int) *Store {
	t.Helper()
	s := diskStore(t, dir)
	for i := 0; i < n; i++ {
		if _, err := s.AddImage(tinyImage(t, float64(i*17%360))); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// copyDirFiles clones a template store directory. Each sweep offset
// starts from a byte-identical copy instead of rebuilding the workload,
// which drops the per-offset fsync count by an order of magnitude.
func copyDirFiles(src, dst string) error {
	entries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, ent := range entries {
		data, err := os.ReadFile(filepath.Join(src, ent.Name()))
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dst, ent.Name()), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// segCrashVerify reopens dir and checks the full committed corpus
// survived, stays appendable, and flushes cleanly.
func segCrashVerify(t *testing.T, dir string, offset int64, want int) bool {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Dir = dir
	r, err := Open(cfg)
	if err != nil {
		t.Errorf("offset %d: reopen failed: %v", offset, err)
		return false
	}
	defer r.Close()
	if got := r.NumImages(); got != want {
		t.Errorf("offset %d: recovered %d images, want %d", offset, got, want)
		return false
	}
	if _, err := r.AddImage(tinyImage(t, 355)); err != nil {
		t.Errorf("offset %d: append after recovery: %v", offset, err)
		return false
	}
	// Flush-after-recovery is itself several fsyncs; sample it rather
	// than paying for it at every offset.
	if offset%8 == 0 {
		if err := r.Snapshot(); err != nil {
			t.Errorf("offset %d: flush after recovery: %v", offset, err)
			return false
		}
	}
	return true
}

// sweepFileSize measures how many bytes one clean flush (or compaction)
// writes to the target file, bounding the sweep.
func sweepFileSize(t *testing.T, dir, name string) int64 {
	t.Helper()
	info, err := os.Stat(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	return info.Size()
}

// TestFlushCrashEveryOffset kills the memtable flush at every byte of
// each file it writes: the segment blob, the manifest, and the
// pre-created next WAL generation.
func TestFlushCrashEveryOffset(t *testing.T) {
	const n = 3
	// Template: the committed-but-unflushed state every offset starts
	// from (WAL tail of n adds, nothing flushed).
	tmpl := t.TempDir()
	ts := segCrashBuild(t, tmpl, n)
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}
	// Clean run: bound each sweep by the real bytes written.
	clean := t.TempDir()
	if err := copyDirFiles(tmpl, clean); err != nil {
		t.Fatal(err)
	}
	cs := diskStore(t, clean)
	if err := cs.Snapshot(); err != nil {
		t.Fatal(err)
	}
	segSize := sweepFileSize(t, clean, segName(1))
	manSize := sweepFileSize(t, clean, manifestFile)
	walSize := sweepFileSize(t, clean, walName(2))
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		prefix string
		limit  int64
	}{
		{"seg-", segSize},
		{"MANIFEST", manSize},
		{"wal-", walSize},
	} {
		t.Run(tc.prefix, func(t *testing.T) {
			reg, restore := hookSweepFaults()
			defer restore()
			workers := 4 * runtime.GOMAXPROCS(0) // I/O-bound: overlap fsyncs
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				base := t.TempDir()
				wg.Add(1)
				go func(w int, base string) {
					defer wg.Done()
					for k := int64(w); k <= tc.limit; k += int64(workers) {
						dir := filepath.Join(base, fmt.Sprintf("o%d", k))
						if err := os.Mkdir(dir, 0o755); err != nil {
							t.Error(err)
							return
						}
						if err := copyDirFiles(tmpl, dir); err != nil {
							t.Error(err)
							return
						}
						cfg := DefaultConfig()
						cfg.Dir = dir
						s, err := Open(cfg) // replays the template's WAL tail
						if err != nil {
							t.Errorf("offset %d: open template copy: %v", k, err)
							return
						}
						// The open above ran unclaimed; only the flush's own
						// writes to the target file can tear.
						reg.install(dir, tc.prefix, k)
						ferr := s.Snapshot()
						reg.clear(dir)
						if k < tc.limit && ferr == nil {
							t.Errorf("offset %d/%s: fault never tripped", k, tc.prefix)
							return
						}
						s.Close() // crash image is on disk; release FDs
						if !segCrashVerify(t, dir, k, n) {
							return
						}
					}
				}(w, base)
			}
			wg.Wait()
		})
	}
}

// TestCompactionCrashEveryOffset kills the background merge at every
// byte of its two outputs — the merged segment and the manifest that
// installs it. Both input segments must survive any tear; after
// recovery a clean compaction must still succeed.
func TestCompactionCrashEveryOffset(t *testing.T) {
	const n = 4
	// Template: two flushed segments, nothing live — the state a
	// compaction starts from.
	tmpl := t.TempDir()
	ts := segCrashBuild(t, tmpl, 2)
	if err := ts.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for i := 2; i < n; i++ {
		if _, err := ts.AddImage(tinyImage(t, float64(i*17%360))); err != nil {
			t.Fatal(err)
		}
	}
	if err := ts.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}
	clean := t.TempDir()
	if err := copyDirFiles(tmpl, clean); err != nil {
		t.Fatal(err)
	}
	cs := diskStore(t, clean)
	if err := cs.eng.compactOnce(); err != nil {
		t.Fatal(err)
	}
	segSize := sweepFileSize(t, clean, segName(3))
	manSize := sweepFileSize(t, clean, manifestFile)
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		prefix string
		limit  int64
	}{
		{"seg-", segSize},
		{"MANIFEST", manSize},
	} {
		t.Run(tc.prefix, func(t *testing.T) {
			reg, restore := hookSweepFaults()
			defer restore()
			workers := 4 * runtime.GOMAXPROCS(0)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				base := t.TempDir()
				wg.Add(1)
				go func(w int, base string) {
					defer wg.Done()
					for k := int64(w); k <= tc.limit; k += int64(workers) {
						dir := filepath.Join(base, fmt.Sprintf("o%d", k))
						if err := os.Mkdir(dir, 0o755); err != nil {
							t.Error(err)
							return
						}
						if err := copyDirFiles(tmpl, dir); err != nil {
							t.Error(err)
							return
						}
						cfg := DefaultConfig()
						cfg.Dir = dir
						s, err := Open(cfg)
						if err != nil {
							t.Errorf("offset %d: open template copy: %v", k, err)
							return
						}
						reg.install(dir, tc.prefix, k)
						cerr := s.eng.compactOnce()
						reg.clear(dir)
						if k < tc.limit && cerr == nil {
							t.Errorf("offset %d/%s: fault never tripped", k, tc.prefix)
							return
						}
						s.Close()
						if !segCrashVerify(t, dir, k, n) {
							return
						}
						// A tear must not wedge compaction: redo it clean
						// (sampled — it costs a reopen plus a full merge).
						if k%8 != 0 {
							continue
						}
						r, err := Open(cfg)
						if err != nil {
							t.Errorf("offset %d: reopen for compaction: %v", k, err)
							return
						}
						if err := r.eng.compactOnce(); err != nil {
							t.Errorf("offset %d: clean compaction after tear: %v", k, err)
							r.Close()
							return
						}
						if st := r.EngineStats(); st.Segments != 1 {
							t.Errorf("offset %d: %d segments after clean compaction, want 1", k, st.Segments)
						}
						r.Close()
					}
				}(w, base)
			}
			wg.Wait()
		})
	}
}
