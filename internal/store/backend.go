package store

import (
	"context"
	"time"

	"repro/internal/geo"
	"repro/internal/index"
)

// Backend is the store surface the platform layers (api, query, analysis,
// core) program against. Two implementations exist: *Store — one
// process-local engine with its own WAL and committer — and
// shard.Coordinator, which hash-partitions the corpus across N stores and
// scatter-gathers reads. Keeping the upper layers on this interface is
// what lets ShardCount change without touching the HTTP surface.
//
// Contract notes, beyond the method docs on *Store:
//
//   - Generation must change whenever any data-plane write applies, so
//     generation-stamped caches stay coherent over any implementation.
//   - Search* results follow the documented deterministic orders
//     ((Dist, ID) for visual/nearest matches, score-descending then ID
//     for text, (time, ID) for temporal ranges, ascending ID where
//     unranked) regardless of how the corpus is partitioned.
type Backend interface {
	// Lifecycle.
	Close() error
	Snapshot() error
	Generation() uint64

	// Images.
	AddImage(img Image) (uint64, error)
	GetImage(id uint64) (Image, error)
	Describe(id uint64) (Descriptor, error)
	DeleteImage(id uint64) error
	NumImages() int
	ImageIDs() []uint64

	// Features.
	PutFeature(imageID uint64, kind string, vec []float64) error
	GetFeature(imageID uint64, kind string) ([]float64, error)
	FeatureKinds(imageID uint64) []string

	// Classifications and annotations.
	CreateClassification(name string, labels []string) (uint64, error)
	GetClassification(id uint64) (Classification, error)
	ClassificationByName(name string) (Classification, error)
	Classifications() []Classification
	Annotate(a Annotation) error
	AnnotationsFor(imageID uint64) []Annotation
	ImagesByLabel(classificationID uint64, label int) []uint64

	// Keywords.
	AddKeywords(imageID uint64, words []string) error
	KeywordsFor(imageID uint64) []string

	// Users and API keys.
	CreateUser(name, role string) (uint64, error)
	IssueAPIKey(userID uint64, now time.Time) (string, error)
	Authenticate(key string) (User, error)

	// Videos.
	AddVideo(description, workerID string, frames []Frame) (uint64, []uint64, error)
	GetVideo(id uint64) (Video, error)
	Videos() []Video

	// Campaigns.
	CreateCampaign(c CampaignRec) (uint64, error)
	GetCampaign(id uint64) (CampaignRec, error)
	Campaigns() []CampaignRec
	CampaignImages(campaignID uint64) []uint64
	FOVsInRegion(r geo.Rect) []geo.FOV

	// Query primitives (composed by internal/query).
	SearchScene(ctx context.Context, r geo.Rect) ([]uint64, error)
	SearchNearest(ctx context.Context, p geo.Point, k int) ([]uint64, error)
	SearchVisual(ctx context.Context, kind string, vec []float64, k int) ([]index.Match, error)
	SearchVisualQuant(ctx context.Context, kind string, vec []float64, k int) ([]index.Match, error)
	SearchVisualExact(ctx context.Context, kind string, vec []float64, k int) ([]index.Match, error)
	SearchVisualRadius(ctx context.Context, kind string, vec []float64, r float64) ([]index.Match, error)
	SearchHybrid(ctx context.Context, kind string, r geo.Rect, vec []float64, k int) ([]index.Match, bool, error)
	SearchText(ctx context.Context, terms []string) ([]index.Match, error)
	SearchTextAll(ctx context.Context, terms []string) ([]index.Match, error)
	SearchTime(ctx context.Context, from, to time.Time) ([]uint64, error)
}

var _ Backend = (*Store)(nil)
