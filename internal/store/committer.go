package store

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Group-commit WAL committer. Mutations no longer write the log
// themselves: while holding their subsystem locks they enqueue
// pre-encoded frames, then — after releasing the locks — block on a
// commit notification. A single committer goroutine drains the queue,
// concatenates every pending frame into one buffered write, issues at
// most one fsync for the whole batch, and wakes every waiter. Under
// concurrent load that coalesces N fsyncs into one without weakening the
// durability contract: a mutation still does not return until its bytes
// (and, with SyncEveryWrite, its fsync) are on disk.
//
// Ordering: frames are written in enqueue order, and enqueues happen
// while the mutating goroutine still holds its subsystem write lock, so
// the log order of any one subsystem matches its in-memory apply order.
// Cross-subsystem dependencies (a feature referencing an image) are safe
// because the dependent call can only be issued after the prerequisite
// mutation returned, i.e. after its frame was already committed.

// commitWait is one enqueued batch member: its frame bytes and the
// channel its mutation blocks on.
type commitWait struct {
	buf  []byte
	ops  uint64
	errc chan error
}

// noneFlushBytes is the SyncNone buffer high-water mark: batches
// accumulate in memory and hit the file only when the buffer crosses it
// (or on rotation/close), trading a bounded window of acknowledged but
// unwritten ops for the fewest possible write syscalls.
const noneFlushBytes = 256 << 10

// walCommitter serialises WAL appends through one goroutine.
type walCommitter struct {
	// wmu serialises every writer interaction (batch writes, flushes,
	// rotation, close) so frames never interleave mid-batch.
	wmu sync.Mutex
	// w is the current log writer; nil after a failed rotation or close,
	// which fails subsequent batches instead of panicking.
	//tvdp:guardedby wmu
	w *walWriter
	// mode selects the batch durability level: SyncImmediate fsyncs each
	// batch before waking its waiters, SyncBatch issues one write per
	// batch and leaves the fsync to the OS, SyncNone buffers batches in
	// memory (buf, guarded by wmu) until noneFlushBytes accumulate.
	mode WALSyncMode
	//tvdp:guardedby wmu
	buf []byte

	// mu guards the queue and the stopped flag.
	mu sync.Mutex
	//tvdp:guardedby mu
	pending []commitWait
	//tvdp:guardedby mu
	stopped bool

	wake chan struct{}
	stop chan struct{}
	done chan struct{}

	// Group-commit observability counters (see Store.WALStats).
	ops     atomic.Uint64
	batches atomic.Uint64
	fsyncs  atomic.Uint64
}

func newWALCommitter(w *walWriter, mode WALSyncMode) *walCommitter {
	c := &walCommitter{
		w:    w,
		mode: mode,
		wake: make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go c.run()
	return c
}

func (c *walCommitter) run() {
	defer close(c.done)
	for {
		select {
		case <-c.wake:
			c.commitPending()
		case <-c.stop:
			// Final drain: anything enqueued before stop was observed must
			// still reach the log.
			c.commitPending()
			return
		}
	}
}

// enqueue queues one batch member and returns the channel its commit
// outcome will be delivered on. Callers hold their subsystem write lock,
// which is what pins log order to apply order.
//
//tvdp:requires catalogMu|imagesMu|featMu|annMu|kwMu|geoMu
func (c *walCommitter) enqueue(buf []byte, ops uint64) <-chan error {
	errc := make(chan error, 1)
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		errc <- ErrClosed
		return errc
	}
	c.pending = append(c.pending, commitWait{buf: buf, ops: ops, errc: errc})
	c.mu.Unlock()
	select {
	case c.wake <- struct{}{}:
	default:
	}
	return errc
}

// commitPending writes everything queued so far as one batch: a single
// Write of the concatenated frames, then at most one fsync.
func (c *walCommitter) commitPending() {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.commitLocked()
}

// commitLocked is commitPending with wmu already held.
//
//tvdp:requires wmu
func (c *walCommitter) commitLocked() {
	c.mu.Lock()
	batch := c.pending
	c.pending = nil
	c.mu.Unlock()
	if len(batch) == 0 {
		return
	}
	err := c.writeBatch(batch)
	c.batches.Add(1)
	for _, m := range batch {
		if err == nil {
			c.ops.Add(m.ops)
		}
		m.errc <- err
	}
}

// writeBatch appends one concatenated batch to the current log. Callers
// hold wmu.
//
//tvdp:requires wmu
func (c *walCommitter) writeBatch(batch []commitWait) error {
	if c.w == nil || c.w.b == nil {
		return fmt.Errorf("store: appending WAL batch: %w", ErrClosed)
	}
	if c.mode == SyncNone {
		// Buffer in memory; the file sees one big write per high-water
		// crossing. Waiters are acked on buffering — that is the stated
		// SyncNone contract (a crash can lose the buffered window).
		for _, m := range batch {
			c.buf = append(c.buf, m.buf...)
		}
		if len(c.buf) < noneFlushBytes {
			return nil
		}
		return c.flushBufLocked()
	}
	n := 0
	for _, m := range batch {
		n += len(m.buf)
	}
	buf := make([]byte, 0, n)
	for _, m := range batch {
		buf = append(buf, m.buf...)
	}
	if _, err := c.w.b.Write(buf); err != nil {
		return fmt.Errorf("store: appending WAL batch of %d op(s): %w", len(batch), err)
	}
	if c.mode == SyncImmediate {
		if err := c.w.b.Sync(); err != nil {
			return fmt.Errorf("store: syncing WAL: %w", err)
		}
		c.fsyncs.Add(1)
	}
	return nil
}

// flushBufLocked writes the SyncNone buffer through to the current log.
// Callers hold wmu.
//
//tvdp:requires wmu
func (c *walCommitter) flushBufLocked() error {
	if len(c.buf) == 0 {
		return nil
	}
	if c.w == nil || c.w.b == nil {
		return fmt.Errorf("store: flushing buffered WAL bytes: %w", ErrClosed)
	}
	buf := c.buf
	c.buf = c.buf[:0]
	if _, err := c.w.b.Write(buf); err != nil {
		return fmt.Errorf("store: flushing %d buffered WAL byte(s): %w", len(buf), err)
	}
	return nil
}

// rotate flushes every pending frame to the retiring log, closes it, and
// installs the writer produced by makeNew — the WAL half of snapshot
// compaction. Callers hold every subsystem write lock, so no new frames
// can be enqueued while the swap is in flight.
//
//tvdp:requires catalogMu,imagesMu,featMu,annMu,kwMu,geoMu
func (c *walCommitter) rotate(makeNew func() (*walWriter, error)) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.commitLocked()
	if err := c.flushBufLocked(); err != nil {
		c.w = nil
		return err
	}
	if err := c.w.close(); err != nil {
		c.w = nil
		return err
	}
	w, err := makeNew()
	if err != nil {
		c.w = nil
		return err
	}
	c.w = w
	return nil
}

// presync makes every byte so far written to the current log durable —
// the out-of-lock half of the rotation chain invariant (see rotateTo).
// The segment engine calls it just before taking the subsystem locks so
// that rotateTo's own fsync, which does run under them, covers only the
// handful of frames that arrive in between. Any failure leaves the
// committer write-dead, as in rotate: after a failed buffer flush the
// log may hold a partial batch mid-file, and after a failed fsync the
// kernel may have dropped the dirty pages — either way appending further
// frames could persist a log with a hole in it.
func (c *walCommitter) presync() error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.commitLocked()
	if err := c.flushBufLocked(); err != nil {
		c.w = nil
		return err
	}
	if c.w == nil || c.w.b == nil {
		return fmt.Errorf("store: syncing WAL before rotation: %w", ErrClosed)
	}
	if err := c.w.b.Sync(); err != nil {
		c.w = nil
		return fmt.Errorf("store: syncing WAL before rotation: %w", err)
	}
	return nil
}

// rotateTo is rotate with the replacement writer already created — the
// segment engine builds the next generation's log (two fsyncs) and syncs
// the retiring log's backlog (presync) before taking any subsystem lock,
// so the freeze-swap under all six locks drains the pending batch into
// the retiring log, fsyncs that small residue, and swaps the pointer:
// O(queued frames), never O(corpus). The retiring writer is returned
// still open for the caller to close once the locks are released.
// Callers hold every subsystem write lock. On failure the replacement is
// closed and the committer goes write-dead (w = nil), exactly like a
// failed rotate.
//
//tvdp:requires catalogMu,imagesMu,featMu,annMu,kwMu,geoMu
func (c *walCommitter) rotateTo(w *walWriter) (*walWriter, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.commitLocked()
	fail := func(err error) (*walWriter, error) {
		c.w = nil
		if cerr := w.close(); cerr != nil {
			return nil, fmt.Errorf("%w (and closing replacement log: %v)", err, cerr)
		}
		return nil, err
	}
	if err := c.flushBufLocked(); err != nil {
		return fail(err)
	}
	if c.w == nil || c.w.b == nil {
		return fail(fmt.Errorf("store: rotating WAL: %w", ErrClosed))
	}
	// Chain invariant: every byte of the retiring log must be durable
	// before the swap makes its successor reachable for frames. Without
	// this sync, a power loss could leave the retiring log with a torn
	// unsynced tail underneath frames already fsynced into the successor
	// — a non-prefix hole recovery must refuse (startSegment treats a
	// torn tail under later frames as ErrWALCorrupt). The fsync here is
	// cheap: presync ran moments ago, so only the frames drained just
	// above are still dirty.
	if err := c.w.b.Sync(); err != nil {
		return fail(fmt.Errorf("store: syncing retiring WAL: %w", err))
	}
	old := c.w
	c.w = w
	return old, nil
}

// close drains the queue, stops the goroutine, and closes the log file.
// Safe to call more than once.
func (c *walCommitter) close() error {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		<-c.done
		return nil
	}
	c.stopped = true
	c.mu.Unlock()
	close(c.stop)
	<-c.done
	c.wmu.Lock()
	defer c.wmu.Unlock()
	err := c.flushBufLocked()
	if cerr := c.w.close(); err == nil {
		err = cerr
	}
	c.w = nil
	return err
}

// WALStats reports group-commit counters since Open. FsyncsPerOp going
// well below 1 under concurrent SyncEveryWrite load is the direct
// evidence that batching is working.
type WALStats struct {
	// Ops counts durably committed WAL operations.
	Ops uint64
	// Batches counts committer wake-ups that wrote at least one frame.
	Batches uint64
	// Fsyncs counts batch fsyncs (0 unless SyncEveryWrite).
	Fsyncs uint64
}

// WALStats returns the group-commit counters (zero for memory-only
// stores).
func (s *Store) WALStats() WALStats {
	if s.com == nil {
		return WALStats{}
	}
	return WALStats{
		Ops:     s.com.ops.Load(),
		Batches: s.com.batches.Load(),
		Fsyncs:  s.com.fsyncs.Load(),
	}
}
