package store

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Group-commit WAL committer. Mutations no longer write the log
// themselves: while holding their subsystem locks they enqueue
// pre-encoded frames, then — after releasing the locks — block on a
// commit notification. A single committer goroutine drains the queue,
// concatenates every pending frame into one buffered write, issues at
// most one fsync for the whole batch, and wakes every waiter. Under
// concurrent load that coalesces N fsyncs into one without weakening the
// durability contract: a mutation still does not return until its bytes
// (and, with SyncEveryWrite, its fsync) are on disk.
//
// Ordering: frames are written in enqueue order, and enqueues happen
// while the mutating goroutine still holds its subsystem write lock, so
// the log order of any one subsystem matches its in-memory apply order.
// Cross-subsystem dependencies (a feature referencing an image) are safe
// because the dependent call can only be issued after the prerequisite
// mutation returned, i.e. after its frame was already committed.

// commitWait is one enqueued batch member: its frame bytes and the
// channel its mutation blocks on.
type commitWait struct {
	buf  []byte
	ops  uint64
	errc chan error
}

// walCommitter serialises WAL appends through one goroutine.
type walCommitter struct {
	// wmu serialises every writer interaction (batch writes, flushes,
	// rotation, close) so frames never interleave mid-batch.
	wmu sync.Mutex
	// w is the current log writer; nil after a failed rotation or close,
	// which fails subsequent batches instead of panicking.
	w *walWriter
	// syncEvery fsyncs each batch before waking its waiters.
	syncEvery bool

	// mu guards the queue and the stopped flag.
	mu      sync.Mutex
	pending []commitWait
	stopped bool

	wake chan struct{}
	stop chan struct{}
	done chan struct{}

	// Group-commit observability counters (see Store.WALStats).
	ops     atomic.Uint64
	batches atomic.Uint64
	fsyncs  atomic.Uint64
}

func newWALCommitter(w *walWriter, syncEvery bool) *walCommitter {
	c := &walCommitter{
		w:         w,
		syncEvery: syncEvery,
		wake:      make(chan struct{}, 1),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	go c.run()
	return c
}

func (c *walCommitter) run() {
	defer close(c.done)
	for {
		select {
		case <-c.wake:
			c.commitPending()
		case <-c.stop:
			// Final drain: anything enqueued before stop was observed must
			// still reach the log.
			c.commitPending()
			return
		}
	}
}

// enqueue queues one batch member and returns the channel its commit
// outcome will be delivered on. Callers hold their subsystem write lock,
// which is what pins log order to apply order.
func (c *walCommitter) enqueue(buf []byte, ops uint64) <-chan error {
	errc := make(chan error, 1)
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		errc <- ErrClosed
		return errc
	}
	c.pending = append(c.pending, commitWait{buf: buf, ops: ops, errc: errc})
	c.mu.Unlock()
	select {
	case c.wake <- struct{}{}:
	default:
	}
	return errc
}

// commitPending writes everything queued so far as one batch: a single
// Write of the concatenated frames, then at most one fsync.
func (c *walCommitter) commitPending() {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.commitLocked()
}

// commitLocked is commitPending with wmu already held.
func (c *walCommitter) commitLocked() {
	c.mu.Lock()
	batch := c.pending
	c.pending = nil
	c.mu.Unlock()
	if len(batch) == 0 {
		return
	}
	err := c.writeBatch(batch)
	c.batches.Add(1)
	for _, m := range batch {
		if err == nil {
			c.ops.Add(m.ops)
		}
		m.errc <- err
	}
}

func (c *walCommitter) writeBatch(batch []commitWait) error {
	if c.w == nil || c.w.b == nil {
		return fmt.Errorf("store: appending WAL batch: %w", ErrClosed)
	}
	n := 0
	for _, m := range batch {
		n += len(m.buf)
	}
	buf := make([]byte, 0, n)
	for _, m := range batch {
		buf = append(buf, m.buf...)
	}
	if _, err := c.w.b.Write(buf); err != nil {
		return fmt.Errorf("store: appending WAL batch of %d op(s): %w", len(batch), err)
	}
	if c.syncEvery {
		if err := c.w.b.Sync(); err != nil {
			return fmt.Errorf("store: syncing WAL: %w", err)
		}
		c.fsyncs.Add(1)
	}
	return nil
}

// rotate flushes every pending frame to the retiring log, closes it, and
// installs the writer produced by makeNew — the WAL half of snapshot
// compaction. Callers hold every subsystem write lock, so no new frames
// can be enqueued while the swap is in flight.
func (c *walCommitter) rotate(makeNew func() (*walWriter, error)) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.commitLocked()
	if err := c.w.close(); err != nil {
		c.w = nil
		return err
	}
	w, err := makeNew()
	if err != nil {
		c.w = nil
		return err
	}
	c.w = w
	return nil
}

// close drains the queue, stops the goroutine, and closes the log file.
// Safe to call more than once.
func (c *walCommitter) close() error {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		<-c.done
		return nil
	}
	c.stopped = true
	c.mu.Unlock()
	close(c.stop)
	<-c.done
	c.wmu.Lock()
	defer c.wmu.Unlock()
	err := c.w.close()
	c.w = nil
	return err
}

// WALStats reports group-commit counters since Open. FsyncsPerOp going
// well below 1 under concurrent SyncEveryWrite load is the direct
// evidence that batching is working.
type WALStats struct {
	// Ops counts durably committed WAL operations.
	Ops uint64
	// Batches counts committer wake-ups that wrote at least one frame.
	Batches uint64
	// Fsyncs counts batch fsyncs (0 unless SyncEveryWrite).
	Fsyncs uint64
}

// WALStats returns the group-commit counters (zero for memory-only
// stores).
func (s *Store) WALStats() WALStats {
	if s.com == nil {
		return WALStats{}
	}
	return WALStats{
		Ops:     s.com.ops.Load(),
		Batches: s.com.batches.Load(),
		Fsyncs:  s.com.fsyncs.Load(),
	}
}
