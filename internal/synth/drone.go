package synth

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/geo"
	"repro/internal/imagesim"
	"repro/internal/par"
)

// Drone-video generation for the paper's future-work direction (§VIII):
// TVDP as a disaster data platform monitoring wildfires with drone video.
// A flight is a straight survey leg producing key frames at a fixed
// interval, each frame carrying its own downward-looking FOV (MediaQ's
// fine-granularity property). Frames whose footprint covers the fire
// render a smoke plume.

// WildfireLabels is the label vocabulary of the smoke classification.
var WildfireLabels = []string{"No Smoke", "Smoke"}

// DroneFrame is one key frame of a flight.
type DroneFrame struct {
	Image      *imagesim.Image
	FOV        geo.FOV
	CapturedAt time.Time
	// Smoke is the ground truth: the frame's footprint covers the fire.
	Smoke bool
}

// FlightConfig parameterises one survey leg.
type FlightConfig struct {
	Seed int64
	// Frames is the number of key frames.
	Frames int
	// Start and HeadingDeg define the straight flight path.
	Start      geo.Point
	HeadingDeg float64
	// SpeedMps and FrameIntervalS space the frames along the path.
	SpeedMps       float64
	FrameIntervalS float64
	// FootprintM is the visible ground radius per frame (altitude proxy).
	FootprintM float64
	// ImageSize is the square pixel size of rendered frames.
	ImageSize int
	// StartTime stamps the first frame.
	StartTime time.Time
	// Fire, when non-nil, places a fire of FireRadiusM at that point.
	Fire        *geo.Point
	FireRadiusM float64
}

// DefaultFlightConfig returns a 30-frame survey leg heading east at
// 20 m/s with 2-second key frames.
func DefaultFlightConfig(start geo.Point, seed int64) FlightConfig {
	return FlightConfig{
		Seed: seed, Frames: 30, Start: start, HeadingDeg: 90,
		SpeedMps: 20, FrameIntervalS: 2, FootprintM: 120, ImageSize: 48,
		StartTime: time.Date(2019, 8, 14, 10, 0, 0, 0, time.UTC),
	}
}

// GenerateFlight renders the key frames of one flight.
func (g *Generator) GenerateFlight(cfg FlightConfig) ([]DroneFrame, error) {
	if cfg.Frames <= 0 {
		return nil, fmt.Errorf("synth: flight needs frames, got %d", cfg.Frames)
	}
	if cfg.ImageSize < 16 {
		return nil, fmt.Errorf("synth: flight ImageSize %d too small", cfg.ImageSize)
	}
	if err := cfg.Start.Validate(); err != nil {
		return nil, fmt.Errorf("synth: flight start: %w", err)
	}
	if cfg.SpeedMps <= 0 || cfg.FrameIntervalS <= 0 || cfg.FootprintM <= 0 {
		return nil, fmt.Errorf("synth: flight needs positive speed, interval, footprint")
	}
	if cfg.Fire != nil && cfg.FireRadiusM <= 0 {
		cfg.FireRadiusM = 60
	}
	stepM := cfg.SpeedMps * cfg.FrameIntervalS
	// Frames render concurrently, each from a split-off rng keyed by frame
	// index, so the flight is bit-identical for any worker count.
	base := g.rng.Int63()
	out := make([]DroneFrame, cfg.Frames)
	par.For(cfg.Frames, func(i int) {
		rng := rand.New(rand.NewSource(par.SplitSeed(base, i)))
		pos := geo.Destination(cfg.Start, cfg.HeadingDeg, stepM*float64(i))
		fov := geo.FOV{
			Camera: pos,
			// A nadir drone camera sees all around its ground point.
			Direction: geo.NormalizeBearing(cfg.HeadingDeg),
			Angle:     360,
			Radius:    cfg.FootprintM,
		}
		smoke := false
		if cfg.Fire != nil {
			smoke = geo.Haversine(pos, *cfg.Fire) <= cfg.FootprintM+cfg.FireRadiusM
		}
		out[i] = DroneFrame{
			Image:      g.renderAerial(rng, cfg.ImageSize, smoke),
			FOV:        fov,
			CapturedAt: cfg.StartTime.Add(time.Duration(float64(i)*cfg.FrameIntervalS*1000) * time.Millisecond),
			Smoke:      smoke,
		}
	})
	return out, nil
}

// renderAerial draws a top-down terrain tile, with a smoke plume when the
// frame covers the fire.
func (g *Generator) renderAerial(rng *rand.Rand, sz int, smoke bool) *imagesim.Image {
	img := imagesim.MustNew(sz, sz)
	// Terrain: green-brown patchwork.
	for y := 0; y < sz; y++ {
		for x := 0; x < sz; x++ {
			base := imagesim.RGB{R: 90, G: 120, B: 60}
			if (x/8+y/8)%2 == 1 {
				base = imagesim.RGB{R: 130, G: 110, B: 70}
			}
			img.Set(x, y, jitterColor(rng, base, 12))
		}
	}
	// A road or firebreak.
	rx := rng.Intn(sz)
	img.DrawLine(rx, 0, sz-1-rx, sz-1, imagesim.RGB{R: 170, G: 165, B: 155})
	if smoke {
		// Smoke plume: a bright-grey gradient blob trail with fire specks
		// at its base.
		bx := 8 + rng.Intn(sz-16)
		by := 8 + rng.Intn(sz-16)
		drift := rng.Float64()*2*math.Pi - math.Pi
		for k := 0; k < 6; k++ {
			cx := bx + int(float64(k*4)*math.Cos(drift))
			cy := by + int(float64(k*4)*math.Sin(drift))
			r := 3 + k
			grey := uint8(150 + k*15)
			img.FillCircle(cx, cy, r, jitterColor(rng, imagesim.RGB{R: grey, G: grey, B: grey}, 10))
		}
		for k := 0; k < 5; k++ {
			img.Set(bx+rng.Intn(5)-2, by+rng.Intn(5)-2,
				jitterColor(rng, imagesim.RGB{R: 230, G: 110, B: 30}, 20))
		}
	}
	g.applyIllumination(rng, img)
	return imagesim.AddGaussianNoise(img, 5, rng)
}
