package synth

import (
	"math"
	"math/rand"

	"repro/internal/imagesim"
)

// Scene rendering. Every class shares the same street backdrop (sky band,
// building band, sidewalk, road) so that global colour statistics overlap
// heavily; class identity lives mainly in object geometry.
//
// Every helper takes its randomness source as an explicit parameter so the
// generator can hand each record an independent split-off rng and render
// records concurrently without sharing state.

func jitterColor(rng *rand.Rand, base imagesim.RGB, spread int) imagesim.RGB {
	j := func(v uint8) uint8 {
		n := int(v) + rng.Intn(2*spread+1) - spread
		if n < 0 {
			n = 0
		}
		if n > 255 {
			n = 255
		}
		return uint8(n)
	}
	return imagesim.RGB{R: j(base.R), G: j(base.G), B: j(base.B)}
}

// renderBackdrop paints the common street scene.
func (g *Generator) renderBackdrop(rng *rand.Rand, img *imagesim.Image) {
	sz := img.H
	skyEnd := sz / 5
	buildingEnd := sz / 2
	sidewalkEnd := sz * 7 / 10
	sky := imagesim.RGB{R: 170, G: 190, B: 215}
	building := imagesim.RGB{R: 150, G: 140, B: 130}
	sidewalk := imagesim.RGB{R: 160, G: 158, B: 152}
	road := imagesim.RGB{R: 95, G: 95, B: 98}
	for y := 0; y < sz; y++ {
		var base imagesim.RGB
		switch {
		case y < skyEnd:
			base = sky
		case y < buildingEnd:
			base = building
		case y < sidewalkEnd:
			base = sidewalk
		default:
			base = road
		}
		for x := 0; x < img.W; x++ {
			img.Set(x, y, jitterColor(rng, base, 10))
		}
	}
	// Building windows give every class some texture.
	for i := 0; i < 4; i++ {
		wx := 2 + rng.Intn(img.W-8)
		wy := skyEnd + 2 + rng.Intn(buildingEnd-skyEnd-6)
		img.FillRect(wx, wy, wx+3, wy+4, jitterColor(rng, imagesim.RGB{R: 70, G: 80, B: 100}, 15))
	}
	// Street trees appear in every class with moderate probability, so
	// green pixels alone cannot identify the vegetation class.
	if rng.Float64() < 0.6 {
		tx := 3 + rng.Intn(img.W-6)
		ty := buildingEnd - 2 - rng.Intn(3)
		for i := 0; i < 25; i++ {
			img.Set(tx+rng.Intn(7)-3, ty+rng.Intn(5)-2,
				jitterColor(rng, imagesim.RGB{R: 60, G: 125, B: 50}, 30))
		}
		img.DrawLine(tx, ty+2, tx, sidewalkEnd, imagesim.RGB{R: 90, G: 70, B: 50})
	}
	// Curb line.
	img.DrawLine(0, sidewalkEnd, img.W-1, sidewalkEnd, imagesim.RGB{R: 200, G: 200, B: 200})
}

// applyIllumination simulates capture-time lighting: a global brightness
// factor (time of day) and a warm/cool colour cast. This is the main
// reason global colour histograms generalise poorly across the corpus
// while gradient-based and learned features stay informative.
func (g *Generator) applyIllumination(rng *rand.Rand, img *imagesim.Image) {
	bright := 0.55 + rng.Float64()*0.75
	castR := 1 + (rng.Float64()-0.5)*0.3
	castB := 1 + (rng.Float64()-0.5)*0.3
	scale := func(v uint8, f float64) uint8 {
		x := float64(v) * f
		if x > 255 {
			x = 255
		}
		if x < 0 {
			x = 0
		}
		return uint8(x)
	}
	for i, p := range img.Pix {
		img.Pix[i] = imagesim.RGB{
			R: scale(p.R, bright*castR),
			G: scale(p.G, bright),
			B: scale(p.B, bright*castB),
		}
	}
}

// fillTriangle rasterises a filled triangle (used for tents).
func fillTriangle(img *imagesim.Image, x0, y0, x1, y1, x2, y2 int, c imagesim.RGB) {
	minX := min3(x0, x1, x2)
	maxX := max3(x0, x1, x2)
	minY := min3(y0, y1, y2)
	maxY := max3(y0, y1, y2)
	sign := func(ax, ay, bx, by, cx, cy int) int {
		return (ax-cx)*(by-cy) - (bx-cx)*(ay-cy)
	}
	for y := minY; y <= maxY; y++ {
		for x := minX; x <= maxX; x++ {
			d1 := sign(x, y, x0, y0, x1, y1)
			d2 := sign(x, y, x1, y1, x2, y2)
			d3 := sign(x, y, x2, y2, x0, y0)
			neg := d1 < 0 || d2 < 0 || d3 < 0
			pos := d1 > 0 || d2 > 0 || d3 > 0
			if !(neg && pos) {
				img.Set(x, y, c)
			}
		}
	}
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

func max3(a, b, c int) int {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	return a
}

// renderScene draws one class-conditional street scene.
func (g *Generator) renderScene(rng *rand.Rand, c Class) *imagesim.Image {
	sz := g.cfg.ImageSize
	img := imagesim.MustNew(sz, sz)
	g.renderBackdrop(rng, img)
	groundTop := sz / 2 // objects sit below the building band
	switch c {
	case BulkyItem:
		g.renderBulky(rng, img, groundTop)
	case IllegalDumping:
		g.renderDumping(rng, img, groundTop)
	case Encampment:
		g.renderEncampment(rng, img, groundTop)
	case OvergrownVegetation:
		g.renderVegetation(rng, img, groundTop)
	case Clean:
		// The backdrop only, plus an occasional lamppost.
		if rng.Float64() < 0.5 {
			x := 4 + rng.Intn(sz-8)
			img.DrawLine(x, sz/4, x, sz*7/10, imagesim.RGB{R: 60, G: 60, B: 60})
		}
	}
	g.applyIllumination(rng, img)
	return imagesim.AddGaussianNoise(img, 6, rng)
}

// Object base colours of the scene model. Tents and trash bags share a
// grey-blue palette on purpose (Fig. 7's encampment/dumping confusion);
// vegetation is distinctively green.
var (
	bagBase  = imagesim.RGB{R: 75, G: 82, B: 95}
	tentBase = imagesim.RGB{R: 80, G: 88, B: 105}
	vegBase  = imagesim.RGB{R: 55, G: 130, B: 45}
)

// couchPalette spans the real-world variety of discarded furniture;
// colour alone cannot identify the bulky-item class.
var couchPalette = []imagesim.RGB{
	{R: 140, G: 95, B: 60},   // brown
	{R: 130, G: 45, B: 45},   // dark red
	{R: 105, G: 105, B: 105}, // grey
	{R: 55, G: 70, B: 110},   // navy
	{R: 110, G: 110, B: 70},  // olive
	{R: 185, G: 170, B: 140}, // beige
}

// renderBulky draws 1-2 couch/mattress silhouettes: a large slab with a
// backrest — big rectangles, few but strong corners, varied colours.
func (g *Generator) renderBulky(rng *rand.Rand, img *imagesim.Image, groundTop int) {
	sz := img.H
	n := 1 + rng.Intn(2)
	for i := 0; i < n; i++ {
		w := sz/3 + rng.Intn(sz/4)
		h := sz/6 + rng.Intn(sz/8)
		x := rng.Intn(sz - w)
		y := groundTop + rng.Intn(sz/3)
		if y+h >= sz {
			y = sz - h - 1
		}
		body := jitterColor(rng, couchPalette[rng.Intn(len(couchPalette))], 25)
		img.FillRect(x, y, x+w, y+h, body)
		// Backrest.
		img.FillRect(x, y-h/2, x+w/4, y, jitterColor(rng, body, 10))
		// Seat cushion seams.
		img.DrawLine(x+w/2, y, x+w/2, y+h-1, imagesim.RGB{R: 90, G: 60, B: 40})
	}
}

// renderDumping draws a cluster of small dark grey-blue trash bags with
// scattered litter around it — many small blobs and a distinctive
// high-frequency debris halo, but a palette shared with tents.
func (g *Generator) renderDumping(rng *rand.Rand, img *imagesim.Image, groundTop int) {
	sz := img.H
	cx := 6 + rng.Intn(sz-12)
	cy := groundTop + sz/6 + rng.Intn(sz/5)
	n := 4 + rng.Intn(4)
	for i := 0; i < n; i++ {
		x := cx + rng.Intn(13) - 6
		y := cy + rng.Intn(9) - 4
		r := 2 + rng.Intn(3)
		bag := jitterColor(rng, bagBase, 20)
		img.FillCircle(x, y, r, bag)
		// Highlight speck: sharp local contrast for the keypoint detector.
		img.Set(x-1, y-1, imagesim.RGB{R: 180, G: 185, B: 195})
	}
	// Litter halo: loose debris scattered around the pile.
	for i := 0; i < 14+rng.Intn(10); i++ {
		x := cx + rng.Intn(25) - 12
		y := cy + rng.Intn(15) - 7
		img.Set(x, y, jitterColor(rng, imagesim.RGB{R: 190, G: 185, B: 170}, 40))
	}
}

// renderEncampment draws 1-3 tents: grey-blue triangles. The palette
// deliberately matches dumping bags so colour alone confuses the two —
// the paper's Fig. 7 reports encampment as the hardest category.
func (g *Generator) renderEncampment(rng *rand.Rand, img *imagesim.Image, groundTop int) {
	sz := img.H
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		// Tent sizes vary: distant tents shrink toward trash-bag scale,
		// which is what makes encampment the hardest category.
		w := sz/6 + rng.Intn(sz/4)
		h := sz/9 + rng.Intn(sz/6)
		// Occasionally a tent is partially cut by the image border.
		x := rng.Intn(sz) - w/4
		base := groundTop + sz/5 + rng.Intn(sz/5)
		if base >= sz {
			base = sz - 1
		}
		tent := jitterColor(rng, tentBase, 20)
		fillTriangle(img, x, base, x+w, base, x+w/2, base-h, tent)
		// Ridge seam.
		img.DrawLine(x+w/2, base-h, x+w/2, base, jitterColor(rng, imagesim.RGB{R: 50, G: 55, B: 70}, 10))
	}
}

// renderVegetation draws an overgrown patch: dense green speckle rising
// from the sidewalk — a distinctive hue (easiest class in Fig. 7).
func (g *Generator) renderVegetation(rng *rand.Rand, img *imagesim.Image, groundTop int) {
	sz := img.H
	x0 := rng.Intn(sz / 2)
	w := sz/2 + rng.Intn(sz/3)
	top := groundTop + rng.Intn(sz/6)
	for i := 0; i < sz*w/6; i++ {
		x := x0 + rng.Intn(w)
		// Denser near the ground.
		y := top + int(math.Sqrt(rng.Float64())*float64(sz-top-1))
		green := jitterColor(rng, vegBase, 30)
		img.Set(x, y, green)
		if rng.Float64() < 0.2 {
			img.Set(x, y-1, green)
		}
	}
}

// graffitiPalette holds the saturated spray colours of a tag.
var graffitiPalette = []imagesim.RGB{
	{R: 220, G: 40, B: 160},
	{R: 40, G: 190, B: 220},
	{R: 235, G: 200, B: 40},
	{R: 150, G: 40, B: 220},
}

// renderGraffiti sprays a colourful tag on the building band — saturated
// blobs and strokes that no other scene element produces. Applied before
// illumination so lighting variance affects tags like everything else...
// (callers invoke it after renderScene, which has already applied
// illumination; the tag keeps extra saturation, which is realistic for
// fresh paint).
func (g *Generator) renderGraffiti(rng *rand.Rand, img *imagesim.Image) {
	sz := img.H
	bandTop := sz / 5
	bandBottom := sz / 2
	x0 := 3 + rng.Intn(sz-14)
	y0 := bandTop + 2 + rng.Intn(bandBottom-bandTop-8)
	c := graffitiPalette[rng.Intn(len(graffitiPalette))]
	// A modest stroke run of overlapping blobs: distinctive hue, small
	// footprint, so tags do not drown the cleanliness signal.
	n := 3 + rng.Intn(3)
	for i := 0; i < n; i++ {
		img.FillCircle(x0+i*3, y0+rng.Intn(3)-1, 1+rng.Intn(2), jitterColor(rng, c, 15))
	}
	if rng.Float64() < 0.5 {
		c2 := graffitiPalette[rng.Intn(len(graffitiPalette))]
		img.DrawLine(x0, y0+3, x0+n*3, y0+2, jitterColor(rng, c2, 15))
	}
}
