// Package synth generates the synthetic geo-tagged street-image corpus
// that stands in for the paper's 22K-image LASAN dataset (§VII-A). Each
// record carries real pixels rendered from a class-conditional scene
// model, a field-of-view spatial descriptor placed on a synthetic Los
// Angeles street grid with per-class geographic hotspots, capture/upload
// timestamps, and manual-style keywords.
//
// The scene model encodes class identity at three strengths on purpose:
//
//   - weakly in global colour (all classes share the street backdrop, and
//     encampment/dumping share a grey-blue object palette),
//   - moderately in local keypoint texture (object shapes differ), and
//   - strongly in mid-level structure (object geometry and placement),
//
// which is the property that lets the reproduction recover the paper's
// Fig. 6 ordering: CNN features > SIFT-BoW > colour histograms.
package synth

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/geo"
	"repro/internal/imagesim"
	"repro/internal/par"
)

// Class is a street-cleanliness label (paper Fig. 5).
type Class int

// The five LASAN cleanliness classes.
const (
	BulkyItem Class = iota
	IllegalDumping
	Encampment
	OvergrownVegetation
	Clean
	NumClasses int = iota
)

// ClassNames maps classes to the paper's display names.
var ClassNames = [...]string{
	"Bulky Item", "Illegal Dumping", "Encampment", "Overgrown Vegetation", "Clean",
}

// String implements fmt.Stringer.
func (c Class) String() string {
	if c < 0 || int(c) >= NumClasses {
		return fmt.Sprintf("Class(%d)", int(c))
	}
	return ClassNames[c]
}

// classKeywords seeds the manual textual descriptors per class.
var classKeywords = map[Class][]string{
	BulkyItem:           {"furniture", "couch", "mattress", "abandoned", "bulky"},
	IllegalDumping:      {"trash", "dumping", "bags", "debris", "litter"},
	Encampment:          {"tent", "homeless", "encampment", "shelter"},
	OvergrownVegetation: {"weeds", "vegetation", "overgrown", "plants"},
	Clean:               {"clean", "clear", "street"},
}

var commonKeywords = []string{"street", "sidewalk", "losangeles", "lasan", "survey"}

// GraffitiLabels is the label vocabulary of the orthogonal graffiti
// classification (§VII-B: "separate learning to identify graffiti using
// the same dataset").
var GraffitiLabels = []string{"No Graffiti", "Graffiti"}

// Record is one synthetic capture: the platform ingests these as if they
// arrived from the MediaQ-style mobile app.
type Record struct {
	Image *imagesim.Image
	Class Class
	// Graffiti marks scenes whose building band carries a spray tag —
	// an attribute orthogonal to the cleanliness class, supporting the
	// paper's multi-classification translational story.
	Graffiti   bool
	FOV        geo.FOV
	CapturedAt time.Time
	UploadedAt time.Time
	Keywords   []string
	// WorkerID identifies the simulated collection vehicle/phone.
	WorkerID string
}

// Config parameterises corpus generation.
type Config struct {
	Seed int64
	// N is the corpus size (paper: 22000; harness default is smaller).
	N int
	// ImageSize is the square pixel size of rendered scenes.
	ImageSize int
	// Center anchors the synthetic city.
	Center geo.Point
	// CityRadiusM bounds capture locations around the center.
	CityRadiusM float64
	// HotspotsPerClass controls geographic clustering: encampments and
	// dumping concentrate around this many per-class hotspots.
	HotspotsPerClass int
	// Start is the capture-period start; captures spread over Days.
	Start time.Time
	Days  int
	// Workers is the number of simulated capture devices.
	Workers int
}

// DefaultConfig returns the harness-scale configuration.
func DefaultConfig(n int, seed int64) Config {
	return Config{
		Seed: seed, N: n, ImageSize: 48,
		Center:      geo.Point{Lat: 34.0522, Lon: -118.2437},
		CityRadiusM: 8000, HotspotsPerClass: 4,
		Start: time.Date(2019, 1, 7, 6, 0, 0, 0, time.UTC), Days: 28,
		Workers: 12,
	}
}

// Generator renders class-conditional records deterministically.
type Generator struct {
	cfg      Config
	rng      *rand.Rand
	hotspots map[Class][]geo.Point
}

// NewGenerator validates the configuration and precomputes hotspots.
func NewGenerator(cfg Config) (*Generator, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("synth: N = %d, want > 0", cfg.N)
	}
	if cfg.ImageSize < 16 {
		return nil, fmt.Errorf("synth: ImageSize = %d, want >= 16", cfg.ImageSize)
	}
	if err := cfg.Center.Validate(); err != nil {
		return nil, fmt.Errorf("synth: center: %w", err)
	}
	if cfg.CityRadiusM <= 0 {
		return nil, fmt.Errorf("synth: CityRadiusM = %v, want > 0", cfg.CityRadiusM)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Days <= 0 {
		cfg.Days = 1
	}
	if cfg.HotspotsPerClass <= 0 {
		cfg.HotspotsPerClass = 3
	}
	g := &Generator{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		hotspots: make(map[Class][]geo.Point),
	}
	for c := Class(0); int(c) < NumClasses; c++ {
		for i := 0; i < cfg.HotspotsPerClass; i++ {
			g.hotspots[c] = append(g.hotspots[c], g.randomCityPoint(g.rng, cfg.CityRadiusM*0.8))
		}
	}
	return g, nil
}

func (g *Generator) randomCityPoint(rng *rand.Rand, radius float64) geo.Point {
	brg := rng.Float64() * 360
	dist := math.Sqrt(rng.Float64()) * radius // uniform over the disc
	return geo.Destination(g.cfg.Center, brg, dist)
}

// location samples a capture point: clustered classes (encampment,
// dumping, vegetation) draw near a hotspot most of the time, others
// uniformly over the city.
func (g *Generator) location(rng *rand.Rand, c Class) geo.Point {
	clustered := c == Encampment || c == IllegalDumping || c == OvergrownVegetation
	if clustered && rng.Float64() < 0.8 {
		h := g.hotspots[c][rng.Intn(len(g.hotspots[c]))]
		brg := rng.Float64() * 360
		dist := math.Abs(rng.NormFloat64()) * 400
		return geo.Destination(h, brg, dist)
	}
	return g.randomCityPoint(rng, g.cfg.CityRadiusM)
}

// Generate renders n records (n <= 0 uses cfg.N) with a balanced class mix.
// Rendering fans out over the par worker pool: each record draws from its
// own rng seeded by splitting a per-call base seed with the record index,
// so the corpus is bit-identical for any worker count. The base seed is
// drawn serially from the generator's rng, so repeated Generate calls on
// one generator produce fresh (but still seed-deterministic) records.
func (g *Generator) Generate(n int) []Record {
	if n <= 0 {
		n = g.cfg.N
	}
	base := g.rng.Int63()
	out := make([]Record, n)
	par.For(n, func(i int) {
		rng := rand.New(rand.NewSource(par.SplitSeed(base, i)))
		out[i] = g.render(rng, Class(i%NumClasses))
	})
	return out
}

// Hotspots exposes the per-class cluster centers (used by coverage and
// campaign tests that need ground truth).
func (g *Generator) Hotspots(c Class) []geo.Point {
	return append([]geo.Point(nil), g.hotspots[c]...)
}

// Render produces one record of the given class using the generator's
// sequential rng. It is not safe for concurrent use; Generate is the
// parallel batch path.
func (g *Generator) Render(c Class) Record { return g.render(g.rng, c) }

// render produces one record of the given class, drawing all randomness
// from rng.
func (g *Generator) render(rng *rand.Rand, c Class) Record {
	// Graffiti is drawn independently of the cleanliness class, but
	// dirtier blocks are tagged more often (the correlation §VII-B's
	// cross-study looks for).
	pGraffiti := 0.12
	if c == IllegalDumping || c == Encampment {
		pGraffiti = 0.35
	}
	graffiti := rng.Float64() < pGraffiti
	img := g.renderScene(rng, c)
	if graffiti {
		g.renderGraffiti(rng, img)
	}
	cam := g.location(rng, c)
	capTime := g.cfg.Start.
		Add(time.Duration(rng.Intn(g.cfg.Days*24)) * time.Hour).
		Add(time.Duration(rng.Intn(3600)) * time.Second)
	upTime := capTime.Add(time.Duration(1+rng.Intn(240)) * time.Minute)
	kws := []string{commonKeywords[rng.Intn(len(commonKeywords))]}
	pool := classKeywords[c]
	kws = append(kws, pool[rng.Intn(len(pool))])
	if rng.Float64() < 0.5 {
		kws = append(kws, pool[rng.Intn(len(pool))])
	}
	if graffiti {
		kws = append(kws, "graffiti")
	}
	return Record{
		Image:    img,
		Class:    c,
		Graffiti: graffiti,
		FOV: geo.FOV{
			Camera:    cam,
			Direction: math.Floor(rng.Float64()*360*100) / 100,
			Angle:     40 + rng.Float64()*40,
			Radius:    60 + rng.Float64()*120,
		},
		CapturedAt: capTime,
		UploadedAt: upTime,
		Keywords:   dedupe(kws),
		WorkerID:   fmt.Sprintf("worker-%02d", rng.Intn(g.cfg.Workers)),
	}
}

func dedupe(ss []string) []string {
	seen := make(map[string]bool, len(ss))
	out := ss[:0]
	for _, s := range ss {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
