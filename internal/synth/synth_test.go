package synth

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/imagesim"
)

func testGen(t *testing.T, n int, seed int64) *Generator {
	t.Helper()
	g, err := NewGenerator(DefaultConfig(n, seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGeneratorValidation(t *testing.T) {
	bad := DefaultConfig(0, 1)
	if _, err := NewGenerator(bad); err == nil {
		t.Fatal("N=0 accepted")
	}
	bad = DefaultConfig(10, 1)
	bad.ImageSize = 8
	if _, err := NewGenerator(bad); err == nil {
		t.Fatal("tiny image accepted")
	}
	bad = DefaultConfig(10, 1)
	bad.Center = geo.Point{Lat: 99}
	if _, err := NewGenerator(bad); err == nil {
		t.Fatal("bad center accepted")
	}
	bad = DefaultConfig(10, 1)
	bad.CityRadiusM = -5
	if _, err := NewGenerator(bad); err == nil {
		t.Fatal("negative radius accepted")
	}
}

func TestGenerateBalancedAndValid(t *testing.T) {
	g := testGen(t, 50, 1)
	recs := g.Generate(0)
	if len(recs) != 50 {
		t.Fatalf("got %d records", len(recs))
	}
	counts := make([]int, NumClasses)
	center := DefaultConfig(50, 1).Center
	for i, r := range recs {
		counts[r.Class]++
		if r.Image == nil || r.Image.W != 48 || r.Image.H != 48 {
			t.Fatalf("record %d image wrong", i)
		}
		if err := r.FOV.Validate(); err != nil {
			t.Fatalf("record %d FOV invalid: %v", i, err)
		}
		if d := geo.Haversine(center, r.FOV.Camera); d > 10000 {
			t.Fatalf("record %d is %0.f m from center", i, d)
		}
		if !r.UploadedAt.After(r.CapturedAt) {
			t.Fatalf("record %d uploaded before captured", i)
		}
		if len(r.Keywords) == 0 {
			t.Fatalf("record %d has no keywords", i)
		}
		if r.WorkerID == "" {
			t.Fatalf("record %d has no worker", i)
		}
	}
	for c, n := range counts {
		if n != 10 {
			t.Fatalf("class %d count = %d, want 10", c, n)
		}
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a := testGen(t, 10, 7).Generate(10)
	b := testGen(t, 10, 7).Generate(10)
	for i := range a {
		if a[i].Class != b[i].Class || a[i].FOV != b[i].FOV || !a[i].CapturedAt.Equal(b[i].CapturedAt) {
			t.Fatal("same-seed records differ")
		}
		for j := range a[i].Image.Pix {
			if a[i].Image.Pix[j] != b[i].Image.Pix[j] {
				t.Fatal("same-seed pixels differ")
			}
		}
	}
	c := testGen(t, 10, 8).Generate(10)
	same := true
	for j := range a[0].Image.Pix {
		if a[0].Image.Pix[j] != c[0].Image.Pix[j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical pixels")
	}
}

func TestClassKeywordsMatch(t *testing.T) {
	g := testGen(t, 10, 2)
	for c := Class(0); int(c) < NumClasses; c++ {
		r := g.Render(c)
		found := false
		pool := classKeywords[c]
		for _, kw := range r.Keywords {
			for _, p := range pool {
				if kw == p {
					found = true
				}
			}
		}
		if !found {
			t.Fatalf("class %v record lacks class keyword: %v", c, r.Keywords)
		}
		// No duplicate keywords.
		seen := map[string]bool{}
		for _, kw := range r.Keywords {
			if seen[kw] {
				t.Fatalf("duplicate keyword %q", kw)
			}
			seen[kw] = true
		}
	}
}

// greenFraction measures how green-dominant an image is.
func greenFraction(r Record) float64 {
	n := 0
	for _, p := range r.Image.Pix {
		if int(p.G) > int(p.R)+20 && int(p.G) > int(p.B)+20 {
			n++
		}
	}
	return float64(n) / float64(len(r.Image.Pix))
}

func TestVegetationIsGreenDominant(t *testing.T) {
	g := testGen(t, 10, 3)
	veg, clean := 0.0, 0.0
	for i := 0; i < 10; i++ {
		veg += greenFraction(g.Render(OvergrownVegetation))
		clean += greenFraction(g.Render(Clean))
	}
	if veg <= clean*2 {
		t.Fatalf("vegetation green mass %.3f not >> clean %.3f", veg/10, clean/10)
	}
}

func TestEncampmentAndDumpingSharePalette(t *testing.T) {
	// The scene model deliberately gives tents and trash bags overlapping
	// base colours (the Fig. 7 confusion pair) while vegetation is
	// distinctively green.
	dist := func(a, b imagesim.RGB) float64 {
		dr := float64(a.R) - float64(b.R)
		dg := float64(a.G) - float64(b.G)
		db := float64(a.B) - float64(b.B)
		return math.Sqrt(dr*dr + dg*dg + db*db)
	}
	if d1, d2 := dist(tentBase, bagBase), dist(tentBase, vegBase); d1 >= d2/3 {
		t.Fatalf("tent-bag palette distance %.1f not well below tent-vegetation %.1f", d1, d2)
	}
}

func TestHotspotClustering(t *testing.T) {
	g := testGen(t, 10, 5)
	spots := g.Hotspots(Encampment)
	if len(spots) == 0 {
		t.Fatal("no hotspots")
	}
	// Most encampment captures land within 1.5 km of some hotspot.
	near := 0
	const n = 60
	for i := 0; i < n; i++ {
		r := g.Render(Encampment)
		for _, h := range spots {
			if geo.Haversine(r.FOV.Camera, h) < 1500 {
				near++
				break
			}
		}
	}
	if near < n*6/10 {
		t.Fatalf("only %d/%d encampment captures near hotspots", near, n)
	}
}

func TestClassString(t *testing.T) {
	if BulkyItem.String() != "Bulky Item" || Clean.String() != "Clean" {
		t.Fatal("class names wrong")
	}
	if Class(99).String() != "Class(99)" {
		t.Fatal("unknown class name wrong")
	}
	if NumClasses != 5 {
		t.Fatalf("NumClasses = %d", NumClasses)
	}
}

func TestGenerateExplicitN(t *testing.T) {
	g := testGen(t, 100, 6)
	recs := g.Generate(7)
	if len(recs) != 7 {
		t.Fatalf("explicit n ignored: %d", len(recs))
	}
}

func TestGenerateFlight(t *testing.T) {
	g := testGen(t, 10, 20)
	start := geo.Point{Lat: 34.2, Lon: -118.4}
	fire := geo.Destination(start, 90, 600)
	cfg := DefaultFlightConfig(start, 1)
	cfg.Fire = &fire
	cfg.FireRadiusM = 60
	frames, err := g.GenerateFlight(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 30 {
		t.Fatalf("frames = %d", len(frames))
	}
	smokeCount := 0
	for i, f := range frames {
		if err := f.FOV.Validate(); err != nil {
			t.Fatalf("frame %d FOV: %v", i, err)
		}
		if f.Image.W != cfg.ImageSize {
			t.Fatalf("frame %d image size %d", i, f.Image.W)
		}
		if i > 0 {
			// Frames advance along the heading at speed*interval.
			d := geo.Haversine(frames[i-1].FOV.Camera, f.FOV.Camera)
			if math.Abs(d-40) > 1 {
				t.Fatalf("frame spacing = %.1f m, want 40", d)
			}
			if !f.CapturedAt.After(frames[i-1].CapturedAt) {
				t.Fatal("timestamps not increasing")
			}
		}
		if f.Smoke {
			smokeCount++
			// Ground truth consistency: the footprint covers the fire.
			if geo.Haversine(f.FOV.Camera, fire) > cfg.FootprintM+cfg.FireRadiusM+1 {
				t.Fatalf("frame %d marked smoke but far from fire", i)
			}
		}
	}
	// The leg passes over the fire: some but not all frames see smoke.
	if smokeCount == 0 || smokeCount == len(frames) {
		t.Fatalf("smoke frames = %d/%d", smokeCount, len(frames))
	}
	// No fire configured: no smoke anywhere.
	cfg2 := DefaultFlightConfig(start, 2)
	frames2, err := g.GenerateFlight(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames2 {
		if f.Smoke {
			t.Fatal("smoke without a fire")
		}
	}
}

func TestGenerateFlightValidation(t *testing.T) {
	g := testGen(t, 10, 21)
	start := geo.Point{Lat: 34.2, Lon: -118.4}
	bad := DefaultFlightConfig(start, 1)
	bad.Frames = 0
	if _, err := g.GenerateFlight(bad); err == nil {
		t.Fatal("0 frames accepted")
	}
	bad = DefaultFlightConfig(start, 1)
	bad.ImageSize = 4
	if _, err := g.GenerateFlight(bad); err == nil {
		t.Fatal("tiny image accepted")
	}
	bad = DefaultFlightConfig(geo.Point{Lat: 99}, 1)
	if _, err := g.GenerateFlight(bad); err == nil {
		t.Fatal("bad start accepted")
	}
	bad = DefaultFlightConfig(start, 1)
	bad.SpeedMps = 0
	if _, err := g.GenerateFlight(bad); err == nil {
		t.Fatal("zero speed accepted")
	}
}

func TestSmokeFramesAreVisuallyDistinct(t *testing.T) {
	g := testGen(t, 10, 22)
	// Grey smoke raises desaturated-bright pixel counts vs plain terrain.
	greyish := func(img *imagesim.Image) int {
		n := 0
		for _, p := range img.Pix {
			max := int(p.R)
			if int(p.G) > max {
				max = int(p.G)
			}
			if int(p.B) > max {
				max = int(p.B)
			}
			min := int(p.R)
			if int(p.G) < min {
				min = int(p.G)
			}
			if int(p.B) < min {
				min = int(p.B)
			}
			if max > 120 && max-min < 30 {
				n++
			}
		}
		return n
	}
	smokeTotal, clearTotal := 0, 0
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 10; i++ {
		smokeTotal += greyish(g.renderAerial(rng, 48, true))
		clearTotal += greyish(g.renderAerial(rng, 48, false))
	}
	if smokeTotal <= clearTotal {
		t.Fatalf("smoke frames not distinct: %d vs %d grey pixels", smokeTotal, clearTotal)
	}
}
