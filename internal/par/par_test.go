package par

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
)

func withWorkers(t *testing.T, n int, fn func()) {
	t.Helper()
	prev := SetWorkers(n)
	defer SetWorkers(prev)
	fn()
}

func TestWorkersDefaultAndOverride(t *testing.T) {
	prev := SetWorkers(0)
	defer SetWorkers(prev)
	if Workers() < 1 {
		t.Fatalf("Workers() = %d", Workers())
	}
	if got := SetWorkers(3); got < 1 {
		t.Fatalf("SetWorkers returned %d", got)
	}
	if Workers() != 3 {
		t.Fatalf("override not applied: %d", Workers())
	}
	if got := SetWorkers(-1); got != 3 {
		t.Fatalf("previous value = %d, want 3", got)
	}
	if Workers() < 1 {
		t.Fatalf("cleared override broken: %d", Workers())
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, w := range []int{1, 2, 7} {
		withWorkers(t, w, func() {
			const n = 1000
			hits := make([]int32, n)
			For(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d index %d hit %d times", w, i, h)
				}
			}
		})
	}
	For(0, func(int) { t.Fatal("called for n=0") })
	For(-3, func(int) { t.Fatal("called for n<0") })
}

func TestMapOrderedResults(t *testing.T) {
	for _, w := range []int{1, 5} {
		withWorkers(t, w, func() {
			out, err := Map(100, func(i int) (int, error) { return i * i, nil })
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range out {
				if v != i*i {
					t.Fatalf("out[%d] = %d", i, v)
				}
			}
		})
	}
}

func TestMapReportsLowestIndexError(t *testing.T) {
	withWorkers(t, 8, func() {
		wantErr := errors.New("boom")
		out, err := Map(200, func(i int) (int, error) {
			if i == 17 || i == 150 {
				return 0, fmt.Errorf("index %d: %w", i, wantErr)
			}
			return i, nil
		})
		if out != nil {
			t.Fatal("results returned despite error")
		}
		if !errors.Is(err, wantErr) || err.Error() != "index 17: boom" {
			t.Fatalf("err = %v, want index 17", err)
		}
	})
}

func TestShardBoundsPartition(t *testing.T) {
	for _, tc := range []struct{ n, grain int }{{10, 3}, {256, 256}, {1000, 64}, {5, 100}, {1, 1}} {
		shards := NumShards(tc.n, tc.grain)
		covered := 0
		for s := 0; s < shards; s++ {
			lo, hi := ShardBounds(tc.n, tc.grain, s)
			if lo != covered {
				t.Fatalf("n=%d grain=%d shard %d lo=%d want %d", tc.n, tc.grain, s, lo, covered)
			}
			if hi <= lo || hi > tc.n {
				t.Fatalf("n=%d grain=%d shard %d bounds [%d,%d)", tc.n, tc.grain, s, lo, hi)
			}
			covered = hi
		}
		if covered != tc.n {
			t.Fatalf("n=%d grain=%d covered %d", tc.n, tc.grain, covered)
		}
	}
	if NumShards(0, 16) != 0 {
		t.Fatal("empty input has shards")
	}
}

// TestShardedReductionBitIdentical is the core determinism property: a
// float reduction over per-shard partials combined in shard order yields
// bit-identical sums for every worker count.
func TestShardedReductionBitIdentical(t *testing.T) {
	const n, grain = 10000, 256
	rng := rand.New(rand.NewSource(42))
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 1e6
	}
	reduce := func() float64 {
		partial := make([]float64, NumShards(n, grain))
		ForShards(n, grain, func(s, lo, hi int) {
			acc := 0.0
			for i := lo; i < hi; i++ {
				acc += vals[i]
			}
			partial[s] = acc
		})
		total := 0.0
		for _, p := range partial {
			total += p
		}
		return total
	}
	var want float64
	for i, w := range []int{1, 2, 3, 8, 32} {
		withWorkers(t, w, func() {
			got := reduce()
			if i == 0 {
				want = got
			} else if got != want {
				t.Fatalf("workers=%d sum %x differs from %x", w, got, want)
			}
		})
	}
}

func TestSplitSeedIndependence(t *testing.T) {
	seen := make(map[int64]bool)
	for _, seed := range []int64{0, 1, 2, -7, 1 << 40} {
		for i := 0; i < 100; i++ {
			s := SplitSeed(seed, i)
			if seen[s] {
				t.Fatalf("collision at seed=%d i=%d", seed, i)
			}
			seen[s] = true
		}
	}
	if SplitSeed(1, 0) != SplitSeed(1, 0) {
		t.Fatal("SplitSeed not deterministic")
	}
}

// --- ctx-variant contract tests -------------------------------------------
//
// The cancellation contract: cancellation is observed only at grain
// boundaries, a started grain always runs to completion, and every index
// that ran produced exactly the value a serial run would have — for any
// worker count. These tests pin all three properties and, under -race,
// that a cancelled call never deadlocks.

func TestForCtxCompletesWhenNotCancelled(t *testing.T) {
	for _, w := range []int{1, 2, 7} {
		withWorkers(t, w, func() {
			const n = 1000
			hits := make([]int32, n)
			if err := ForCtx(context.Background(), n, func(i int) { atomic.AddInt32(&hits[i], 1) }); err != nil {
				t.Fatalf("workers=%d ForCtx = %v", w, err)
			}
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d index %d hit %d times", w, i, h)
				}
			}
		})
	}
	if err := ForCtx(context.Background(), 0, func(int) { t.Fatal("called for n=0") }); err != nil {
		t.Fatalf("n=0 ForCtx = %v", err)
	}
}

func TestForCtxPreCancelledRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, w := range []int{1, 4} {
		withWorkers(t, w, func() {
			var calls atomic.Int32
			err := ForCtx(ctx, 10000, func(int) { calls.Add(1) })
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("workers=%d err = %v, want context.Canceled", w, err)
			}
			if calls.Load() != 0 {
				t.Fatalf("workers=%d ran %d items on a pre-cancelled ctx", w, calls.Load())
			}
		})
	}
}

// TestForCtxGrainsNeverTear cancels mid-run and asserts the all-or-nothing
// grain property: for every grain block, either every index in it ran (and
// its slot holds the serial value) or none did. This is the worker-count
// invariance of completed work — a written slot is bit-identical to what a
// serial run writes, regardless of when cancellation landed.
func TestForCtxGrainsNeverTear(t *testing.T) {
	const n = 4096
	for _, w := range []int{1, 2, 8} {
		withWorkers(t, w, func() {
			grain := n / (w * 8)
			if grain < 1 {
				grain = 1
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			slots := make([]int64, n)
			var done atomic.Int32
			err := ForCtx(ctx, n, func(i int) {
				atomic.StoreInt64(&slots[i], int64(i)*3+1) // the "serial value"
				if done.Add(1) == n/4 {
					cancel() // land the cancellation mid-run
				}
			})
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Fatalf("workers=%d err = %v", w, err)
			}
			for lo := 0; lo < n; lo += grain {
				hi := lo + grain
				if hi > n {
					hi = n
				}
				ran, missed := 0, 0
				for i := lo; i < hi; i++ {
					v := atomic.LoadInt64(&slots[i])
					switch v {
					case 0:
						missed++
					case int64(i)*3 + 1:
						ran++
					default:
						t.Fatalf("workers=%d slot %d = %d, not the serial value", w, i, v)
					}
				}
				if ran != 0 && missed != 0 {
					t.Fatalf("workers=%d grain [%d,%d) torn: %d ran, %d missed", w, lo, hi, ran, missed)
				}
			}
			if err == nil && done.Load() != n {
				t.Fatalf("workers=%d nil error but only %d/%d ran", w, done.Load(), n)
			}
		})
	}
}

func TestMapCtxContract(t *testing.T) {
	// Complete run: full slice, nil error.
	out, err := MapCtx(context.Background(), 50, func(i int) (int, error) { return i * i, nil })
	if err != nil || len(out) != 50 || out[7] != 49 {
		t.Fatalf("MapCtx = (%v, %v)", out, err)
	}
	// Pre-cancelled: withheld slice, the cause.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if out, err := MapCtx(ctx, 50, func(i int) (int, error) { return i, nil }); out != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled MapCtx = (%v, %v)", out, err)
	}
	// Item errors from completed indices beat the cancellation.
	wantErr := errors.New("item 3 broke")
	withWorkers(t, 1, func() {
		ctx2, cancel2 := context.WithCancel(context.Background())
		defer cancel2()
		_, err := MapCtx(ctx2, 8, func(i int) (int, error) {
			if i == 3 {
				cancel2()
				return 0, wantErr
			}
			return i, nil
		})
		if !errors.Is(err, wantErr) {
			t.Fatalf("item error lost to cancellation: %v", err)
		}
	})
}

func TestForShardsCtxWholeShards(t *testing.T) {
	const n, grain = 1000, 17
	for _, w := range []int{1, 6} {
		withWorkers(t, w, func() {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			shards := NumShards(n, grain)
			state := make([]int32, shards)
			var fired atomic.Int32
			err := ForShardsCtx(ctx, n, grain, func(s, lo, hi int) {
				if hi-lo <= 0 || hi > n {
					t.Errorf("shard %d bad bounds [%d,%d)", s, lo, hi)
				}
				atomic.StoreInt32(&state[s], int32(hi-lo))
				if fired.Add(1) == int32(shards/3) {
					cancel()
				}
			})
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Fatalf("workers=%d err = %v", w, err)
			}
			for s := 0; s < shards; s++ {
				lo, hi := ShardBounds(n, grain, s)
				if got := atomic.LoadInt32(&state[s]); got != 0 && got != int32(hi-lo) {
					t.Fatalf("workers=%d shard %d partial: %d of %d", w, s, got, hi-lo)
				}
			}
		})
	}
}

// TestForCtxCancelNeverDeadlocks hammers concurrent cancellation; under
// -race this also checks the stopped/cursor handoff. A deadlock fails via
// the test binary's timeout.
func TestForCtxCancelNeverDeadlocks(t *testing.T) {
	for round := 0; round < 30; round++ {
		withWorkers(t, 1+round%8, func() {
			ctx, cancel := context.WithCancel(context.Background())
			var hits atomic.Int32
			go func() {
				for hits.Load() < int32(1+round*7%200) {
				}
				cancel()
			}()
			err := ForCtx(ctx, 5000, func(int) { hits.Add(1) })
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Fatalf("round %d err = %v", round, err)
			}
			cancel()
		})
	}
}
