package par

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
)

func withWorkers(t *testing.T, n int, fn func()) {
	t.Helper()
	prev := SetWorkers(n)
	defer SetWorkers(prev)
	fn()
}

func TestWorkersDefaultAndOverride(t *testing.T) {
	prev := SetWorkers(0)
	defer SetWorkers(prev)
	if Workers() < 1 {
		t.Fatalf("Workers() = %d", Workers())
	}
	if got := SetWorkers(3); got < 1 {
		t.Fatalf("SetWorkers returned %d", got)
	}
	if Workers() != 3 {
		t.Fatalf("override not applied: %d", Workers())
	}
	if got := SetWorkers(-1); got != 3 {
		t.Fatalf("previous value = %d, want 3", got)
	}
	if Workers() < 1 {
		t.Fatalf("cleared override broken: %d", Workers())
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, w := range []int{1, 2, 7} {
		withWorkers(t, w, func() {
			const n = 1000
			hits := make([]int32, n)
			For(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d index %d hit %d times", w, i, h)
				}
			}
		})
	}
	For(0, func(int) { t.Fatal("called for n=0") })
	For(-3, func(int) { t.Fatal("called for n<0") })
}

func TestMapOrderedResults(t *testing.T) {
	for _, w := range []int{1, 5} {
		withWorkers(t, w, func() {
			out, err := Map(100, func(i int) (int, error) { return i * i, nil })
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range out {
				if v != i*i {
					t.Fatalf("out[%d] = %d", i, v)
				}
			}
		})
	}
}

func TestMapReportsLowestIndexError(t *testing.T) {
	withWorkers(t, 8, func() {
		wantErr := errors.New("boom")
		out, err := Map(200, func(i int) (int, error) {
			if i == 17 || i == 150 {
				return 0, fmt.Errorf("index %d: %w", i, wantErr)
			}
			return i, nil
		})
		if out != nil {
			t.Fatal("results returned despite error")
		}
		if !errors.Is(err, wantErr) || err.Error() != "index 17: boom" {
			t.Fatalf("err = %v, want index 17", err)
		}
	})
}

func TestShardBoundsPartition(t *testing.T) {
	for _, tc := range []struct{ n, grain int }{{10, 3}, {256, 256}, {1000, 64}, {5, 100}, {1, 1}} {
		shards := NumShards(tc.n, tc.grain)
		covered := 0
		for s := 0; s < shards; s++ {
			lo, hi := ShardBounds(tc.n, tc.grain, s)
			if lo != covered {
				t.Fatalf("n=%d grain=%d shard %d lo=%d want %d", tc.n, tc.grain, s, lo, covered)
			}
			if hi <= lo || hi > tc.n {
				t.Fatalf("n=%d grain=%d shard %d bounds [%d,%d)", tc.n, tc.grain, s, lo, hi)
			}
			covered = hi
		}
		if covered != tc.n {
			t.Fatalf("n=%d grain=%d covered %d", tc.n, tc.grain, covered)
		}
	}
	if NumShards(0, 16) != 0 {
		t.Fatal("empty input has shards")
	}
}

// TestShardedReductionBitIdentical is the core determinism property: a
// float reduction over per-shard partials combined in shard order yields
// bit-identical sums for every worker count.
func TestShardedReductionBitIdentical(t *testing.T) {
	const n, grain = 10000, 256
	rng := rand.New(rand.NewSource(42))
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 1e6
	}
	reduce := func() float64 {
		partial := make([]float64, NumShards(n, grain))
		ForShards(n, grain, func(s, lo, hi int) {
			acc := 0.0
			for i := lo; i < hi; i++ {
				acc += vals[i]
			}
			partial[s] = acc
		})
		total := 0.0
		for _, p := range partial {
			total += p
		}
		return total
	}
	var want float64
	for i, w := range []int{1, 2, 3, 8, 32} {
		withWorkers(t, w, func() {
			got := reduce()
			if i == 0 {
				want = got
			} else if got != want {
				t.Fatalf("workers=%d sum %x differs from %x", w, got, want)
			}
		})
	}
}

func TestSplitSeedIndependence(t *testing.T) {
	seen := make(map[int64]bool)
	for _, seed := range []int64{0, 1, 2, -7, 1 << 40} {
		for i := 0; i < 100; i++ {
			s := SplitSeed(seed, i)
			if seen[s] {
				t.Fatalf("collision at seed=%d i=%d", seed, i)
			}
			seen[s] = true
		}
	}
	if SplitSeed(1, 0) != SplitSeed(1, 0) {
		t.Fatal("SplitSeed not deterministic")
	}
}
