// Package par is TVDP's deterministic data-parallel execution layer. Every
// hot loop of the analysis pipeline — corpus synthesis, feature extraction,
// kMeans quantisation, classifier training, cross-validation — fans out
// through this package so one knob (Workers / SetWorkers) governs the
// platform's CPU use.
//
// The package offers a strict determinism contract: for the same inputs and
// seeds, results are bit-identical regardless of the worker count. Three
// mechanisms make that hold:
//
//  1. Index-ordered collection: Map writes result i to slot i, so output
//     order never depends on goroutine scheduling.
//  2. Fixed-grain sharding: ForShards partitions work into shards whose
//     boundaries depend only on the item count — never on the worker
//     count — so floating-point reductions that combine per-shard partials
//     in shard order perform the same additions in the same order on one
//     worker as on sixty-four.
//  3. RNG splitting: SplitSeed derives an independent per-item seed from a
//     parent seed with a SplitMix64 mix, so stochastic work (scene
//     rendering, bootstrap sampling) consumes no shared RNG stream.
//
// The pool is bounded: at most Workers() goroutines run per call, items are
// pulled from an atomic cursor in contiguous blocks, and calls with n <= 1
// or one worker degrade to plain loops with zero goroutine overhead.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// workerOverride holds the SetWorkers value; 0 means "use runtime.NumCPU".
var workerOverride atomic.Int64

// Workers returns the effective parallelism: the SetWorkers override if one
// is active, else runtime.NumCPU().
func Workers() int {
	if n := workerOverride.Load(); n > 0 {
		return int(n)
	}
	return runtime.NumCPU()
}

// SetWorkers overrides the pool size for subsequent calls and returns the
// previous effective value. n <= 0 clears the override (back to NumCPU).
// Tests and CLIs use it to pin parallelism; the determinism contract makes
// the setting unobservable in results.
func SetWorkers(n int) int {
	prev := Workers()
	if n <= 0 {
		workerOverride.Store(0)
	} else {
		workerOverride.Store(int64(n))
	}
	return prev
}

// run executes fn(lo, hi) over blocks covering [0, n) on w goroutines.
// Blocks are handed out from an atomic cursor in `grain`-sized runs.
func run(n, w, grain int, fn func(lo, hi int)) {
	if grain < 1 {
		grain = 1
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				hi := int(cursor.Add(int64(grain)))
				lo := hi - grain
				if lo >= n {
					return
				}
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// runCtx is run with a cancellation checkpoint at every grain boundary:
// a worker checks ctx before pulling the next block from the cursor and
// stops dispatching once the context is done. Blocks already started run
// to completion — cancellation never tears a grain in half — so every
// slot a caller observes as written holds exactly the value a serial run
// would have produced. Returns ctx.Err() if any work was skipped.
func runCtx(ctx context.Context, n, w, grain int, fn func(lo, hi int)) error {
	if grain < 1 {
		grain = 1
	}
	var cursor atomic.Int64
	var stopped atomic.Bool
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					stopped.Store(true)
					return
				}
				hi := int(cursor.Add(int64(grain)))
				lo := hi - grain
				if lo >= n {
					return
				}
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
	// stopped records whether any worker skipped work: if none did, every
	// item in [0, n) ran to completion even when ctx was cancelled in the
	// same instant, and the output is complete.
	if stopped.Load() {
		return context.Cause(ctx)
	}
	return nil
}

// For runs fn(i) for every i in [0, n) on the worker pool. fn must be safe
// to call concurrently and must not care about execution order; writes to
// distinct per-index slots are the intended communication pattern.
func For(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	// Block grain amortises the cursor contention for cheap bodies while
	// still load-balancing expensive ones.
	grain := n / (w * 8)
	run(n, w, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// ForCtx is For with a cancellation checkpoint between grains: once ctx
// is done, no new block is dispatched, but blocks already started run to
// completion, so every index fn was called for holds exactly the value a
// serial run would have produced (the determinism contract restricted to
// the completed subset). Returns nil when every index ran, else the
// context's cause.
func ForCtx(ctx context.Context, n int, fn func(i int)) error {
	if n <= 0 {
		return nil
	}
	w := Workers()
	if w > n {
		w = n
	}
	grain := n / (w * 8)
	if grain < 1 {
		grain = 1
	}
	if w <= 1 {
		// Serial path: the checkpoint cadence matches the parallel grain so
		// cancellation latency is worker-count independent.
		for lo := 0; lo < n; lo += grain {
			if err := ctx.Err(); err != nil {
				return context.Cause(ctx)
			}
			hi := lo + grain
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}
		return nil
	}
	return runCtx(ctx, n, w, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// Map applies fn to every index in [0, n) and collects results in index
// order. If any call fails, Map returns the error of the lowest failing
// index (matching what a serial loop would report) and a nil slice. All
// items are attempted even after a failure so the reported error does not
// depend on scheduling.
func Map[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	var mu sync.Mutex
	errIdx := -1
	var firstErr error
	For(n, func(i int) {
		v, err := fn(i)
		if err != nil {
			mu.Lock()
			if errIdx < 0 || i < errIdx {
				errIdx, firstErr = i, err
			}
			mu.Unlock()
			return
		}
		out[i] = v
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// MapCtx is Map with ForCtx's cancellation contract. On cancellation it
// returns (nil, cause) without waiting for undispatched items; indices
// that did run produced exactly the serial values, but the slice is
// withheld because its completeness cannot be promised. Item errors from
// completed indices take precedence over the cancellation, matching
// Map's lowest-failing-index rule over the completed subset.
func MapCtx[T any](ctx context.Context, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	var mu sync.Mutex
	errIdx := -1
	var firstErr error
	ctxErr := ForCtx(ctx, n, func(i int) {
		v, err := fn(i)
		if err != nil {
			mu.Lock()
			if errIdx < 0 || i < errIdx {
				errIdx, firstErr = i, err
			}
			mu.Unlock()
			return
		}
		out[i] = v
	})
	if firstErr != nil {
		return nil, firstErr
	}
	if ctxErr != nil {
		return nil, ctxErr
	}
	return out, nil
}

// NumShards returns the number of fixed-size shards ForShards uses to cover
// n items at the given grain (items per shard). Shard boundaries depend
// only on n and grain — never on the worker count — which is what makes
// shard-ordered floating-point reductions bit-deterministic.
func NumShards(n, grain int) int {
	if n <= 0 {
		return 0
	}
	if grain < 1 {
		grain = 1
	}
	return (n + grain - 1) / grain
}

// ShardBounds returns the [lo, hi) item range of shard s for n items at the
// given grain.
func ShardBounds(n, grain, s int) (lo, hi int) {
	if grain < 1 {
		grain = 1
	}
	lo = s * grain
	hi = lo + grain
	if hi > n {
		hi = n
	}
	return lo, hi
}

// ForShards partitions [0, n) into NumShards(n, grain) fixed-grain shards
// and runs fn(shard, lo, hi) for each on the worker pool. Callers that
// accumulate floating-point partials per shard and then reduce them in
// shard index order get bit-identical results for any worker count.
func ForShards(n, grain int, fn func(shard, lo, hi int)) {
	shards := NumShards(n, grain)
	For(shards, func(s int) {
		lo, hi := ShardBounds(n, grain, s)
		fn(s, lo, hi)
	})
}

// ForShardsCtx is ForShards with ForCtx's cancellation contract: shards
// are whole grains, so a cancelled call never splits a shard — every
// shard either ran completely (its partial is exactly the serial value)
// or not at all. Returns nil when every shard ran, else the context's
// cause.
func ForShardsCtx(ctx context.Context, n, grain int, fn func(shard, lo, hi int)) error {
	shards := NumShards(n, grain)
	return ForCtx(ctx, shards, func(s int) {
		lo, hi := ShardBounds(n, grain, s)
		fn(s, lo, hi)
	})
}

// SplitSeed derives the i-th child seed of a parent seed using a SplitMix64
// finalizer over a Weyl sequence step. Children are statistically
// independent of each other and of the parent stream, so per-item RNGs
// seeded this way decouple stochastic work from execution order.
func SplitSeed(seed int64, i int) int64 {
	z := uint64(seed) + uint64(i+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}
