// Package tvdp is the public face of the Translational Visual Data
// Platform (TVDP), a reproduction of "TVDP: Translational Visual Data
// Platform for Smart Cities" (Kim, Alfarrarjeh, Constantinou, Shahabi —
// ICDE 2019). It re-exports the platform core (internal/core): a unified
// layer over the paper's four services — Acquisition (spatial
// crowdsourcing), Access (multi-modal indexed storage), Analysis (feature
// extraction and shareable ML models), and Action (capability-aware edge
// dispatch and crowd-based learning).
//
// Quickstart:
//
//	p, err := tvdp.Open(tvdp.Config{Dir: "./data"})
//	...
//	id, err := p.Ingest(ctx, img, fov, capturedAt, []string{"tent"})
//	spec, err := p.TrainModel(ctx, analysis.TrainConfig{...})
//	results, plan, err := p.Search(ctx, query.Query{...})
//
// Every request-shaped method takes a context.Context first; pass a
// deadline-carrying context to bound searches and training runs, and use
// Serve's context for graceful shutdown.
//
// See the runnable programs under examples/ for full scenarios.
package tvdp

import (
	"repro/internal/core"
	"repro/internal/ml"
)

// Config controls platform construction. See core.Config.
type Config = core.Config

// Platform is one running TVDP instance. See core.Platform.
type Platform = core.Platform

// ServeConfig controls Platform.Serve. See core.ServeConfig.
type ServeConfig = core.ServeConfig

// Stats summarises platform contents. See core.Stats.
type Stats = core.Stats

// Open creates or recovers a platform.
func Open(cfg Config) (*Platform, error) { return core.Open(cfg) }

// DefaultClassifierFactory returns the paper's best estimator (linear
// SVM) as an ml.Factory for TrainModel configs.
func DefaultClassifierFactory(seed int64) ml.Factory {
	return core.DefaultClassifierFactory(seed)
}
