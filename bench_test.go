package tvdp

// Benchmark harness: one testing.B target per paper figure and per
// DESIGN.md ablation. Figure benches report the headline quality numbers
// via b.ReportMetric so `go test -bench` output doubles as the
// reproduction record; `cmd/tvdp-bench` prints the full tables.

import (
	"context"
	"hash/fnv"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/crowd"
	"repro/internal/edge"
	"repro/internal/experiments"
	"repro/internal/feature"
	"repro/internal/geo"
	"repro/internal/index"
	"repro/internal/ml"
	"repro/internal/nn"
	"repro/internal/par"
	"repro/internal/store"
	"repro/internal/synth"
)

// benchScale keeps the one-time corpus cost around half a minute; the
// full-scale run lives in cmd/tvdp-bench.
var benchScale = experiments.Scale{N: 500, BoWVocab: 48, CNNEpochs: 8, CNNAugment: 1, Seed: 1}

// The corpus is built once and shared by every figure benchmark, so it is
// read-only by contract: benchmarks must not mutate records, labels, split
// indices, or feature vectors. benchCorpus enforces the contract with a
// checksum taken right after the build and re-verified on every later use.
var (
	corpusOnce sync.Once
	corpus     *experiments.Corpus
	corpusErr  error
	corpusSum  uint64
)

// corpusChecksum folds every feature bit and label of the corpus into one
// FNV-1a hash.
func corpusChecksum(c *experiments.Corpus) uint64 {
	h := fnv.New64a()
	buf := make([]byte, 8)
	put := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf)
	}
	for _, kind := range experiments.FeatureNames {
		for _, vec := range c.Features[kind] {
			for _, v := range vec {
				put(math.Float64bits(v))
			}
		}
	}
	for _, y := range c.Labels {
		put(uint64(y))
	}
	for _, i := range c.TrainIdx {
		put(uint64(i))
	}
	for _, i := range c.TestIdx {
		put(uint64(i))
	}
	return h.Sum64()
}

func benchCorpus(b *testing.B) *experiments.Corpus {
	b.Helper()
	corpusOnce.Do(func() {
		corpus, corpusErr = experiments.BuildCorpus(benchScale)
		if corpusErr == nil {
			corpusSum = corpusChecksum(corpus)
		}
	})
	if corpusErr != nil {
		b.Fatal(corpusErr)
	}
	if sum := corpusChecksum(corpus); sum != corpusSum {
		b.Fatalf("shared benchmark corpus was mutated (checksum %x, want %x): benchmarks must treat it as read-only", sum, corpusSum)
	}
	return corpus
}

// BenchmarkParCorpusBuild measures the data-parallel corpus pipeline
// (synthesis, BoW, kMeans, CNN training, feature extraction) and reports
// the wall-clock speedup of the default worker count over one worker. On a
// single-core machine the speedup hovers around 1.0; on >= 4 cores the
// fan-out stages dominate and the ratio climbs well above 2.
func BenchmarkParCorpusBuild(b *testing.B) {
	scale := experiments.Scale{N: 150, BoWVocab: 16, CNNEpochs: 2, CNNAugment: 0, Seed: 5}
	prev := par.SetWorkers(1)
	start := time.Now()
	ref, err := experiments.BuildCorpus(scale)
	if err != nil {
		b.Fatal(err)
	}
	serial := time.Since(start)
	par.SetWorkers(prev)
	b.ResetTimer()
	var c *experiments.Corpus
	for i := 0; i < b.N; i++ {
		c, err = experiments.BuildCorpus(scale)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// Worker count must not change the output (the determinism contract).
	if corpusChecksum(c) != corpusChecksum(ref) {
		b.Fatal("parallel corpus differs from serial corpus")
	}
	parallel := b.Elapsed() / time.Duration(b.N)
	b.ReportMetric(float64(par.Workers()), "workers")
	b.ReportMetric(serial.Seconds()/parallel.Seconds(), "speedup-x")
}

// BenchmarkFig6FeatureClassifierGrid reproduces Fig. 6: macro F1 of every
// (feature, classifier) pair. Reported metrics are the SVM column, the
// paper's headline (SIFT-BoW 0.64, CNN 0.83; ordering CNN > BoW > colour).
func BenchmarkFig6FeatureClassifierGrid(b *testing.B) {
	c := benchCorpus(b)
	b.ResetTimer()
	var r *experiments.Fig6Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.RunFig6(c, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.F1[experiments.FeatureNames[0]]["SVM"], "F1-color-svm")
	b.ReportMetric(r.F1[experiments.FeatureNames[1]]["SVM"], "F1-siftbow-svm")
	b.ReportMetric(r.F1[experiments.FeatureNames[2]]["SVM"], "F1-cnn-svm")
}

// BenchmarkFig7PerCategoryF1 reproduces Fig. 7: per-category F1 of the
// SVM per feature family. Reported metrics are the CNN column's best
// (Overgrown Vegetation in the paper) and worst (Encampment) categories.
func BenchmarkFig7PerCategoryF1(b *testing.B) {
	c := benchCorpus(b)
	b.ResetTimer()
	var r *experiments.Fig7Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.RunFig7(c)
		if err != nil {
			b.Fatal(err)
		}
	}
	cnn := r.F1[experiments.FeatureNames[2]]
	b.ReportMetric(cnn[int(synth.OvergrownVegetation)], "F1-cnn-vegetation")
	b.ReportMetric(cnn[int(synth.Encampment)], "F1-cnn-encampment")
}

// BenchmarkFig8EdgeInference reproduces Fig. 8: mean inference time per
// model and device. Reported metrics are the 224px latencies that anchor
// the paper's log plot (desktop tens of ms, RPI ~1.5 orders slower).
func BenchmarkFig8EdgeInference(b *testing.B) {
	var r *experiments.Fig8Result
	for i := 0; i < b.N; i++ {
		r = experiments.RunFig8(1, 50)
	}
	b.ReportMetric(r.MeanMs["MobileNetV1"]["Desktop"][3], "ms-mnv1-desktop")
	b.ReportMetric(r.MeanMs["MobileNetV1"]["Raspberry PI 3 B+"][3], "ms-mnv1-rpi")
	b.ReportMetric(r.MeanMs["InceptionV3"]["Raspberry PI 3 B+"][3], "ms-incv3-rpi")
}

// ---- A1: spatial index ablation ----

func spatialFixture(b *testing.B, n int) ([]index.SpatialItem, []geo.Rect) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	la := geo.Point{Lat: 34.0522, Lon: -118.2437}
	items := make([]index.SpatialItem, n)
	for i := range items {
		cam := geo.Destination(la, rng.Float64()*360, rng.Float64()*8000)
		f := geo.FOV{Camera: cam, Direction: rng.Float64() * 360, Angle: 60, Radius: 120}
		items[i] = index.SpatialItem{ID: uint64(i), Rect: f.SceneLocation()}
	}
	qs := make([]geo.Rect, 256)
	for i := range qs {
		c := geo.Destination(la, rng.Float64()*360, rng.Float64()*7000)
		qs[i] = geo.NewRect(geo.Destination(c, 315, 500), geo.Destination(c, 135, 500))
	}
	return items, qs
}

func BenchmarkA1SpatialIndexes_RTree(b *testing.B) {
	items, qs := spatialFixture(b, 20000)
	rt, err := index.NewRTree(index.DefaultRTreeConfig())
	if err != nil {
		b.Fatal(err)
	}
	for _, it := range items {
		if err := rt.Insert(it); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.SearchRect(qs[i%len(qs)])
	}
}

func BenchmarkA1SpatialIndexes_Grid(b *testing.B) {
	items, qs := spatialFixture(b, 20000)
	la := geo.Point{Lat: 34.0522, Lon: -118.2437}
	bounds := geo.NewRect(geo.Destination(la, 315, 12000), geo.Destination(la, 135, 12000))
	g, err := index.NewGrid(bounds, 64, 64)
	if err != nil {
		b.Fatal(err)
	}
	for _, it := range items {
		if err := g.Insert(it); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.SearchRect(qs[i%len(qs)])
	}
}

func BenchmarkA1SpatialIndexes_Scan(b *testing.B) {
	items, qs := spatialFixture(b, 20000)
	s := index.NewLinearScan()
	for _, it := range items {
		s.Insert(it)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SearchRect(qs[i%len(qs)])
	}
}

// ---- A2: LSH vs exact visual search ----

func lshFixture(b *testing.B, n, dim int) (*index.LSH, [][]float64) {
	b.Helper()
	l, err := index.NewLSH(dim, index.DefaultLSHConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < n; i++ {
		v := make([]float64, dim)
		c := float64(i % 20)
		for j := range v {
			v[j] = c + rng.NormFloat64()*0.25
		}
		if err := l.Insert(uint64(i), v); err != nil {
			b.Fatal(err)
		}
	}
	qs := make([][]float64, 128)
	for i := range qs {
		v := make([]float64, dim)
		c := float64(i % 20)
		for j := range v {
			v[j] = c + rng.NormFloat64()*0.25
		}
		qs[i] = v
	}
	return l, qs
}

func BenchmarkA2LSHvsExact_LSH(b *testing.B) {
	l, qs := lshFixture(b, 20000, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.TopK(context.Background(), qs[i%len(qs)], 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkA2LSHvsExact_Exact(b *testing.B) {
	l, qs := lshFixture(b, 20000, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.ExactTopK(context.Background(), qs[i%len(qs)], 10); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- A3: hybrid vs two-phase spatial-visual ----

// hybridFixture mirrors the A3 ablation study's configuration:
// class-clustered 16-dim feature vectors. The hybrid tree's advantage
// depends on feature-space clusterability — its per-node feature boxes
// prune only when vectors cluster (as learned CNN features do); on
// illumination-dominated raw colour histograms the two-phase plan wins.
func hybridFixture(b *testing.B, n int) (*Platform, []geo.Rect, [][]float64) {
	b.Helper()
	const kind = string(feature.KindCNN)
	const dim = 16
	p, err := Open(Config{HybridKinds: []string{kind}})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { p.Close() })
	g, err := synth.NewGenerator(synth.DefaultConfig(n, 3))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	clusterVec := func(cls int) []float64 {
		v := make([]float64, dim)
		for j := range v {
			v[j] = float64(cls) + rng.NormFloat64()*0.3
		}
		return v
	}
	for i, rec := range g.Generate(n) {
		id, err := p.Store.AddImage(store.Image{
			FOV: rec.FOV, Pixels: rec.Image, TimestampCapturing: rec.CapturedAt,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := p.Store.PutFeature(id, kind, clusterVec(i%synth.NumClasses)); err != nil {
			b.Fatal(err)
		}
	}
	la := geo.Point{Lat: 34.0522, Lon: -118.2437}
	qs := make([]geo.Rect, 64)
	qvs := make([][]float64, 64)
	for i := range qs {
		c := geo.Destination(la, rng.Float64()*360, rng.Float64()*6000)
		qs[i] = geo.NewRect(geo.Destination(c, 315, 2500), geo.Destination(c, 135, 2500))
		qvs[i] = clusterVec(i % synth.NumClasses)
	}
	return p, qs, qvs
}

func BenchmarkA3HybridIndex_Hybrid(b *testing.B) {
	p, qs, qvs := hybridFixture(b, 4000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(qs)
		if _, ok, err := p.Store.SearchHybrid(context.Background(), string(feature.KindCNN), qs[j], qvs[j], 10); err != nil || !ok {
			b.Fatalf("hybrid: ok=%v err=%v", ok, err)
		}
	}
}

func BenchmarkA3HybridIndex_TwoPhase(b *testing.B) {
	p, qs, qvs := hybridFixture(b, 4000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(qs)
		if _, err := p.Query.TwoPhaseSpatialVisual(context.Background(), qs[j], string(feature.KindCNN), qvs[j], 10); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- A4: crowdsourcing assignment strategies ----

func benchAssign(b *testing.B, strategy crowd.Strategy) {
	rng := rand.New(rand.NewSource(5))
	la := geo.Point{Lat: 34.0522, Lon: -118.2437}
	tasks := make([]crowd.Task, 60)
	for i := range tasks {
		tasks[i] = crowd.Task{ID: uint64(i + 1), Location: geo.Destination(la, rng.Float64()*360, rng.Float64()*1500)}
	}
	workers := make([]crowd.Worker, 15)
	for i := range workers {
		workers[i] = crowd.Worker{
			ID:         string(rune('A' + i)),
			Location:   geo.Destination(la, rng.Float64()*360, rng.Float64()*1500),
			MaxTravelM: 900, Capacity: 4,
		}
	}
	b.ResetTimer()
	var assigned int
	for i := 0; i < b.N; i++ {
		a, err := crowd.Assign(tasks, workers, strategy, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		assigned = a.Assigned()
	}
	b.ReportMetric(float64(assigned), "tasks-assigned")
}

func BenchmarkA4CrowdAssignment_Greedy(b *testing.B)  { benchAssign(b, crowd.StrategyGreedy) }
func BenchmarkA4CrowdAssignment_Entropy(b *testing.B) { benchAssign(b, crowd.StrategyEntropy) }
func BenchmarkA4CrowdAssignment_Random(b *testing.B)  { benchAssign(b, crowd.StrategyRandom) }

// ---- A5: edge data selection ----

func benchEdgeSelection(b *testing.B, strategy edge.SelectionStrategy) {
	const dim, classes = 12, 4
	task := func(n int, seed int64) ([][]float64, []int) {
		rng := rand.New(rand.NewSource(seed))
		var xs [][]float64
		var ys []int
		for i := 0; i < n; i++ {
			c := i % classes
			v := make([]float64, dim)
			for j := range v {
				v[j] = rng.NormFloat64() * 0.6
			}
			v[c] += 2.2
			xs = append(xs, v)
			ys = append(ys, c)
		}
		return xs, ys
	}
	testX, testY := task(150, 99)
	b.ResetTimer()
	var final float64
	for i := 0; i < b.N; i++ {
		seedX, seedY := task(16, 1)
		srv, err := edge.NewServer(dim, classes, 24, seedX, seedY, 2)
		if err != nil {
			b.Fatal(err)
		}
		var devices []*edge.Device
		for d := 0; d < 3; d++ {
			dev := &edge.Device{Profile: edge.Smartphone}
			x, y := task(40, int64(10+d))
			for j := range x {
				dev.Local = append(dev.Local, edge.Sample{Vec: x[j], Label: y[j]})
			}
			devices = append(devices, dev)
		}
		reports, err := edge.Loop(srv, devices, strategy, 8, 3, testX, testY, 3)
		if err != nil {
			b.Fatal(err)
		}
		final = reports[len(reports)-1].Accuracy
	}
	b.ReportMetric(final, "final-accuracy")
}

func BenchmarkA5EdgeSelection_Uncertainty(b *testing.B) {
	benchEdgeSelection(b, edge.SelectUncertainty)
}

func BenchmarkA5EdgeSelection_Random(b *testing.B) {
	benchEdgeSelection(b, edge.SelectRandom)
}

// ---- A6: store ingest throughput ----

func BenchmarkA6StoreIngest(b *testing.B) {
	cfg := store.DefaultConfig()
	cfg.Dir = b.TempDir()
	st, err := store.Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	g, err := synth.NewGenerator(synth.DefaultConfig(1, 6))
	if err != nil {
		b.Fatal(err)
	}
	recs := make([]synth.Record, 256)
	for i := range recs {
		recs[i] = g.Render(synth.Class(i % synth.NumClasses))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := recs[i%len(recs)]
		if _, err := st.AddImage(store.Image{
			FOV: rec.FOV, Pixels: rec.Image,
			TimestampCapturing: rec.CapturedAt.Add(time.Duration(i) * time.Second),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- A7: text search ----

func textFixture(b *testing.B) (*index.Inverted, [][]string, []string) {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	base := []string{"tent", "trash", "weeds", "couch", "clean", "graffiti", "street", "sidewalk"}
	vocab := make([]string, 0, len(base)*50)
	for _, w := range base {
		for d := 0; d < 50; d++ {
			vocab = append(vocab, w+string(rune('a'+d%26))+string(rune('a'+d/26)))
		}
	}
	ix := index.NewInverted()
	raw := make([][]string, 50000)
	for i := range raw {
		raw[i] = []string{vocab[rng.Intn(len(vocab))], vocab[rng.Intn(len(vocab))]}
		ix.Add(uint64(i), raw[i])
	}
	qs := make([]string, 256)
	for i := range qs {
		qs[i] = vocab[rng.Intn(len(vocab))]
	}
	return ix, raw, qs
}

func BenchmarkA7TextSearch_Inverted(b *testing.B) {
	ix, _, qs := textFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.SearchAny([]string{qs[i%len(qs)]})
	}
}

func BenchmarkA7TextSearch_Scan(b *testing.B) {
	_, raw, qs := textFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		var hits []uint64
		for id, kws := range raw {
			for _, k := range kws {
				if k == q {
					hits = append(hits, uint64(id))
					break
				}
			}
		}
		_ = hits
	}
}

// ---- supporting micro-benchmarks ----

// BenchmarkFeatureExtraction measures the per-image cost of each feature
// family used in Fig. 6.
func BenchmarkFeatureExtraction_ColorHist(b *testing.B) {
	g, _ := synth.NewGenerator(synth.DefaultConfig(1, 8))
	img := g.Render(synth.Clean).Image
	ch := feature.NewColorHistogram()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ch.Extract(img); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFeatureExtraction_SIFT(b *testing.B) {
	g, _ := synth.NewGenerator(synth.DefaultConfig(1, 9))
	img := g.Render(synth.IllegalDumping).Image
	cfg := feature.DefaultSIFTConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := feature.DetectKeypoints(img, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCNNForward measures one convnet forward pass (the unit the
// Fig. 8 cost model abstracts).
func BenchmarkCNNForward(b *testing.B) {
	net := nn.BuildFeatureNet(nn.DefaultFeatureNetConfig(synth.NumClasses))
	x := make([]float64, nn.DefaultFeatureNetConfig(synth.NumClasses).In.Size())
	for i := range x {
		x[i] = float64(i%255) / 255
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Forward(x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSVMFit measures one SVM fit at Fig. 6 training scale on
// 64-dim features.
func BenchmarkSVMFit(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	d := ml.Dataset{Classes: synth.NumClasses}
	for i := 0; i < 400; i++ {
		v := make([]float64, 64)
		c := i % synth.NumClasses
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		v[c] += 2
		d.X = append(d.X, v)
		d.Y = append(d.Y, c)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clf := ml.NewLinearSVM(ml.DefaultLinearConfig(1))
		if err := clf.Fit(d); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- A8: CNN training augmentation ----

// BenchmarkA8Augmentation trains the CNN feature extractor with and
// without augmented copies and reports the SVM macro-F1 of each — the
// quality the §IV-B augmentation machinery buys.
func BenchmarkA8Augmentation(b *testing.B) {
	var r *experiments.A8Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.RunA8Augmentation(200, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.F1ByAugment[0], "F1-noaug")
	b.ReportMetric(r.F1ByAugment[2], "F1-aug2")
}
