package tvdp

import (
	"context"
	"testing"

	"repro/internal/synth"
)

// The integration suite for the platform lives in internal/core; this
// test pins the public aliases: a downstream user's Open/Config/Platform
// round trip works through the root package.
func TestPublicAliases(t *testing.T) {
	p, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var _ *Platform = p
	g, err := synth.NewGenerator(synth.DefaultConfig(5, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range g.Generate(5) {
		if _, err := p.IngestRecord(context.Background(), rec); err != nil {
			t.Fatal(err)
		}
	}
	var st Stats = p.Stats()
	if st.Images != 5 {
		t.Fatalf("stats = %+v", st)
	}
	if DefaultClassifierFactory(1)().Name() != "SVM" {
		t.Fatal("factory alias broken")
	}
}
