// Street cleanliness: the paper's primary use case (§VII-A). LASAN-style
// captures are ingested and labelled, a cleanliness classifier is trained
// over shared features, unlabeled images are machine-annotated, and the
// per-category quality is reported — the collaborative analysis loop
// between a government data provider and research partners.
//
//	go run ./examples/street_cleanliness
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	tvdp "repro"
	"repro/internal/analysis"
	"repro/internal/feature"
	"repro/internal/ml"
	"repro/internal/synth"
)

func main() {
	ctx := context.Background()
	p, err := tvdp.Open(tvdp.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()

	if _, err := p.CreateClassification("street_cleanliness", synth.ClassNames[:]); err != nil {
		log.Fatal(err)
	}

	// LASAN uploads 300 captures; the first 240 arrive with human labels
	// (the one-time shared labelling effort), the rest are raw.
	g, err := synth.NewGenerator(synth.DefaultConfig(300, 7))
	if err != nil {
		log.Fatal(err)
	}
	var unlabeled []uint64
	truth := make(map[uint64]synth.Class)
	for i, rec := range g.Generate(300) {
		id, err := p.IngestRecord(ctx, rec)
		if err != nil {
			log.Fatal(err)
		}
		truth[id] = rec.Class
		if i < 240 {
			if err := p.AnnotateHuman(id, "street_cleanliness", int(rec.Class), rec.CapturedAt); err != nil {
				log.Fatal(err)
			}
		} else {
			unlabeled = append(unlabeled, id)
		}
	}
	fmt.Printf("ingested 300 captures (240 labelled, 60 raw)\n")

	// USC researchers train an SVM over the shared colour features with a
	// validation holdout (the paper's protocol).
	spec, err := p.TrainModel(ctx, analysis.TrainConfig{
		Name:           "lasan-cleanliness-svm",
		Classification: "street_cleanliness",
		FeatureKind:    string(feature.KindColorHist),
		Factory:        tvdp.DefaultClassifierFactory(1),
		HoldoutFrac:    0.2,
		Owner:          "usc-researchers",
		Seed:           1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %q on %d rows, validation macro-F1 %.3f\n",
		spec.Name, spec.TrainedOn, spec.MacroF1)

	// The model machine-annotates the raw captures; results are written
	// back to the store as augmented knowledge.
	annotated, skipped, err := p.Analysis.AnnotateImages(ctx, spec.Name, unlabeled, time.Now())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("machine-annotated %d raw captures (%d skipped)\n\n", annotated, skipped)

	// Score the machine annotations against the withheld ground truth.
	cm := ml.NewConfusionMatrix(synth.NumClasses)
	cls, err := p.Store.ClassificationByName("street_cleanliness")
	if err != nil {
		log.Fatal(err)
	}
	for _, id := range unlabeled {
		for _, a := range p.Store.AnnotationsFor(id) {
			if a.ClassificationID == cls.ID {
				if err := cm.Add(int(truth[id]), a.Label); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	fmt.Printf("machine annotation quality on the 60 raw captures:\n")
	fmt.Print(cm.Report(synth.ClassNames[:]))
}
