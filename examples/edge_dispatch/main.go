// Edge dispatch: the Action service (§VI, Fig. 4). The dispatcher picks
// the right model variant per device under a latency budget, then the
// crowd-based learning loop uploads uncertainty-selected feature vectors
// from edge devices to improve the server model while spending a fraction
// of the raw-image bandwidth.
//
//	go run ./examples/edge_dispatch
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/edge"
	"repro/internal/nn"
)

func main() {
	// --- Part 1: capability-aware dispatch (Fig. 8's setting). ---
	sim := edge.NewInferenceSim(1)
	fmt.Println("model dispatch under a 1-second latency budget:")
	for _, dev := range edge.Devices() {
		d, err := edge.Dispatch(dev, nn.Profiles(), edge.Constraints{
			MaxLatency: time.Second, ImageSide: 224,
		}, sim)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-18s -> %-12s (est. %7.1f ms, constraints met: %v)\n",
			dev.Name, d.Model.Name, float64(d.EstimatedLatency)/float64(time.Millisecond), d.MetConstraints)
	}

	fmt.Println("\nsimulated inference times at 224px (mean of 50 runs):")
	for _, m := range nn.Profiles() {
		fmt.Printf("  %-14s", m.Name)
		for _, dev := range edge.Devices() {
			fmt.Printf("  %-18s %8.1f ms", dev.Name, float64(sim.MeanInfer(m, dev, 224, 50))/float64(time.Millisecond))
		}
		fmt.Println()
	}

	// --- Part 2: crowd-based learning loop. ---
	const dim, classes = 16, 4
	task := func(n int, seed int64) ([][]float64, []int) {
		rng := rand.New(rand.NewSource(seed))
		var xs [][]float64
		var ys []int
		for i := 0; i < n; i++ {
			c := i % classes
			v := make([]float64, dim)
			for j := range v {
				v[j] = rng.NormFloat64() * 0.6
			}
			v[c] += 2.0
			xs = append(xs, v)
			ys = append(ys, c)
		}
		return xs, ys
	}
	seedX, seedY := task(20, 1) // small server-side seed set
	server, err := edge.NewServer(dim, classes, 32, seedX, seedY, 2)
	if err != nil {
		log.Fatal(err)
	}
	testX, testY := task(300, 3)

	var devices []*edge.Device
	for i := 0; i < 4; i++ {
		d := &edge.Device{Profile: edge.Smartphone}
		x, y := task(80, int64(10+i))
		for j := range x {
			d.Local = append(d.Local, edge.Sample{Vec: x[j], Label: y[j]})
		}
		devices = append(devices, d)
	}

	fmt.Println("\ncrowd-based learning (uncertainty-prioritised uploads):")
	reports, err := edge.Loop(server, devices, edge.SelectUncertainty, 12, 5, testX, testY, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-6s %-9s %-12s %-12s %s\n", "round", "uploads", "feat bytes", "raw bytes", "accuracy")
	for _, r := range reports {
		fmt.Printf("%-6d %-9d %-12d %-12d %.3f\n",
			r.Round, r.Uploaded, r.UploadedBytes, r.RawBytes, r.Accuracy)
	}
	first, last := reports[0], reports[len(reports)-1]
	fmt.Printf("\naccuracy %.3f -> %.3f; feature uploads cost %.1f%% of raw-image bandwidth\n",
		first.Accuracy, last.Accuracy,
		100*float64(sumBytes(reports))/float64(sumRaw(reports)))
}

func sumBytes(rs []edge.RoundReport) int64 {
	var t int64
	for _, r := range rs {
		t += r.UploadedBytes
	}
	return t
}

func sumRaw(rs []edge.RoundReport) int64 {
	var t int64
	for _, r := range rs {
		t += r.RawBytes
	}
	if t == 0 {
		return 1
	}
	return t
}
