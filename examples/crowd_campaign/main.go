// Crowd campaign: proactive data acquisition (§III). A neighbourhood's
// passive coverage is measured with the FOV cell model; a campaign tasks
// mobile workers at the weak cells, round by round, until the target
// coverage is reached; every capture is ingested back into the platform.
//
//	go run ./examples/crowd_campaign
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	tvdp "repro"
	"repro/internal/crowd"
	"repro/internal/geo"
	"repro/internal/imagesim"
	"repro/internal/synth"
)

func main() {
	ctx := context.Background()
	p, err := tvdp.Open(tvdp.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()

	la := geo.Point{Lat: 34.0522, Lon: -118.2437}
	region := geo.NewRect(geo.Destination(la, 315, 1200), geo.Destination(la, 135, 1200))

	// Passive collection covers only the area near downtown.
	g, err := synth.NewGenerator(synth.DefaultConfig(60, 3))
	if err != nil {
		log.Fatal(err)
	}
	for i, rec := range g.Generate(60) {
		// Clamp passive captures toward the center to create gaps.
		rec.FOV.Camera = geo.Destination(la, float64(i*6), 300)
		if _, err := p.IngestRecord(ctx, rec); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("passive collection: %d captures near downtown\n", p.Stats().Images)

	// A pool of volunteer workers spread over the neighbourhood.
	rng := rand.New(rand.NewSource(5))
	workers := make([]crowd.Worker, 12)
	for i := range workers {
		workers[i] = crowd.Worker{
			ID:         fmt.Sprintf("volunteer-%02d", i),
			Location:   geo.Destination(la, rng.Float64()*360, rng.Float64()*1400),
			MaxTravelM: 900,
			Capacity:   4,
		}
	}

	// The capture hook renders a real scene at the tasked location and
	// ingests it, so campaign data flows into the same store.
	capRNG := rand.New(rand.NewSource(9))
	captureAndIngest := func(task crowd.Task, workerID string) []crowd.Capture {
		caps := crowd.DefaultCaptureFunc(2, 140, capRNG.Int63())(task, workerID)
		for _, c := range caps {
			img := imagesim.MustNew(48, 48)
			img.Fill(imagesim.RGB{R: 120, G: 120, B: 120})
			if _, err := p.Ingest(ctx, img, c.FOV, time.Now(), []string{"campaign"}); err != nil {
				log.Printf("ingest: %v", err)
			}
		}
		return caps
	}

	runner, err := p.NewCampaignRunner(crowd.Campaign{
		ID: 1, Name: "fill-the-gaps", Region: region,
		TargetCoverage: 0.9, MaxRounds: 10, Strategy: crowd.StrategyEntropy,
	}, 10, 10, workers, captureAndIngest, 7)
	if err != nil {
		log.Fatal(err)
	}

	reports, err := runner.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncampaign rounds (target coverage 0.90):\n")
	fmt.Printf("%-6s %-7s %-9s %-9s %-9s %s\n", "round", "tasks", "assigned", "captures", "coverage", "travel")
	for _, r := range reports {
		fmt.Printf("%-6d %-7d %-9d %-9d %-9.3f %.0f m\n",
			r.Round, r.TasksIssued, r.TasksAssigned, r.Captures, r.Coverage, r.TravelM)
	}
	final := reports[len(reports)-1]
	fmt.Printf("\nfinal coverage %.3f after %d rounds; store now holds %d images\n",
		final.Coverage, final.Round, p.Stats().Images)

	// Redundancy check: how much collection effort was duplicated?
	red, err := crowd.Redundancy(runner.FOVs(), 5000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mean pairwise FOV redundancy of the collected set: %.3f\n", red)
}
