// Disaster drone: the paper's future-work scenario (§VIII) — TVDP as a
// disaster data platform. Drone survey flights over a wildfire area are
// ingested as videos of FOV-tagged key frames; a smoke detector is
// trained from one labelled flight; new flights are machine-annotated in
// near real time; and the fire location is estimated from the FOVs of
// smoke-positive frames.
//
//	go run ./examples/disaster_drone
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	tvdp "repro"
	"repro/internal/analysis"
	"repro/internal/feature"
	"repro/internal/geo"
	"repro/internal/store"
	"repro/internal/synth"
)

func main() {
	ctx := context.Background()
	p, err := tvdp.Open(tvdp.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()

	if _, err := p.CreateClassification("wildfire_smoke", synth.WildfireLabels); err != nil {
		log.Fatal(err)
	}

	g, err := synth.NewGenerator(synth.DefaultConfig(10, 99))
	if err != nil {
		log.Fatal(err)
	}

	// Ground truth: a fire burning northeast of the survey area.
	base := geo.Point{Lat: 34.25, Lon: -118.45}
	fire := geo.Destination(base, 90, 900)
	fmt.Printf("ground-truth fire at %v\n\n", fire)

	// Flight 1 (training): crosses the fire; an operator labels frames.
	ingestFlight := func(name string, start geo.Point, heading float64, seed int64, label bool) (uint64, []uint64, []synth.DroneFrame) {
		cfg := synth.DefaultFlightConfig(start, seed)
		cfg.HeadingDeg = heading
		cfg.Frames = 40
		cfg.Fire = &fire
		cfg.FireRadiusM = 80
		frames, err := g.GenerateFlight(cfg)
		if err != nil {
			log.Fatal(err)
		}
		sf := make([]store.Frame, len(frames))
		for i, f := range frames {
			sf[i] = store.Frame{
				Pixels: f.Image, FOV: f.FOV, CapturedAt: f.CapturedAt,
				Keywords: []string{"drone", "wildfire", "survey"},
			}
		}
		vid, ids, err := p.Store.AddVideo(name, "drone-1", sf)
		if err != nil {
			log.Fatal(err)
		}
		smoke := 0
		for i, id := range ids {
			if _, err := p.Analysis.ExtractAndStore(ctx, id); err != nil {
				log.Fatal(err)
			}
			if label {
				lbl := 0
				if frames[i].Smoke {
					lbl = 1
					smoke++
				}
				if err := p.AnnotateHuman(id, "wildfire_smoke", lbl, frames[i].CapturedAt); err != nil {
					log.Fatal(err)
				}
			}
		}
		if label {
			fmt.Printf("%s: %d key frames ingested as video %d (%d smoke-labelled)\n",
				name, len(ids), vid, smoke)
		} else {
			fmt.Printf("%s: %d key frames ingested as video %d (unlabelled)\n", name, len(ids), vid)
		}
		return vid, ids, frames
	}

	_, _, _ = ingestFlight("training flight", base, 90, 1, true)
	// A second labelled pass on a parallel track enriches training data.
	_, _, _ = ingestFlight("training flight 2", geo.Destination(base, 180, 150), 90, 2, true)

	// Train the smoke detector from the stored, labelled frames.
	spec, err := p.TrainModel(ctx, analysis.TrainConfig{
		Name:           "smoke-detector",
		Classification: "wildfire_smoke",
		FeatureKind:    string(feature.KindColorHist),
		Factory:        tvdp.DefaultClassifierFactory(1),
		HoldoutFrac:    0.25,
		Owner:          "fire-department",
		Seed:           1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsmoke detector trained on %d frames, validation macro-F1 %.3f\n\n", spec.TrainedOn, spec.MacroF1)

	// Flight 3 (monitoring): a new unlabelled pass on a different track.
	_, ids3, frames3 := ingestFlight("monitoring flight", geo.Destination(base, 0, 100), 90, 3, false)
	annotated, _, err := p.Analysis.AnnotateImages(ctx, "smoke-detector", ids3, time.Now())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("machine-annotated %d monitoring frames\n", annotated)

	// Situation awareness: estimate the fire location as the centroid of
	// the smoke-positive frames' FOV footprints.
	cls, _ := p.Store.ClassificationByName("wildfire_smoke")
	var latSum, lonSum float64
	n := 0
	correct, total := 0, 0
	for i, id := range ids3 {
		for _, a := range p.Store.AnnotationsFor(id) {
			if a.ClassificationID != cls.ID {
				continue
			}
			total++
			if (a.Label == 1) == frames3[i].Smoke {
				correct++
			}
			if a.Label == 1 {
				img, _ := p.Store.GetImage(id)
				c := img.Scene.Center()
				latSum += c.Lat
				lonSum += c.Lon
				n++
			}
		}
	}
	fmt.Printf("detector agreement with ground truth on monitoring flight: %d/%d\n", correct, total)
	if n == 0 {
		fmt.Println("no smoke detected on the monitoring flight")
		return
	}
	est := geo.Point{Lat: latSum / float64(n), Lon: lonSum / float64(n)}
	fmt.Printf("estimated fire location %v — %.0f m from ground truth (%d positive frames)\n",
		est, geo.Haversine(est, fire), n)
}
