// Quickstart: open a platform, ingest a handful of geo-tagged street
// images, run every query modality, and print the results.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	tvdp "repro"
	"repro/internal/feature"
	"repro/internal/geo"
	"repro/internal/query"
	"repro/internal/synth"
)

func main() {
	ctx := context.Background()
	p, err := tvdp.Open(tvdp.Config{}) // in-memory
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()

	// 1. Register the LASAN cleanliness labelling scheme.
	if _, err := p.CreateClassification("street_cleanliness", synth.ClassNames[:]); err != nil {
		log.Fatal(err)
	}

	// 2. Ingest 50 synthetic street captures (stand-ins for MediaQ
	// uploads) with ground-truth labels.
	g, err := synth.NewGenerator(synth.DefaultConfig(50, 42))
	if err != nil {
		log.Fatal(err)
	}
	var firstEncampment uint64
	for _, rec := range g.Generate(50) {
		id, err := p.IngestRecord(ctx, rec)
		if err != nil {
			log.Fatal(err)
		}
		if err := p.AnnotateHuman(id, "street_cleanliness", int(rec.Class), rec.CapturedAt); err != nil {
			log.Fatal(err)
		}
		if rec.Class == synth.Encampment && firstEncampment == 0 {
			firstEncampment = id
		}
	}
	fmt.Printf("ingested %d images; extracted features: %v\n\n",
		p.Stats().Images, p.Stats().FeatureKinds)

	la := geo.Point{Lat: 34.0522, Lon: -118.2437}

	// 3. Spatial query: everything within 3 km of downtown.
	r := geo.NewRect(geo.Destination(la, 315, 3000), geo.Destination(la, 135, 3000))
	res, plan, err := p.Search(ctx, query.Query{Spatial: &query.SpatialClause{Rect: &r}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spatial (3 km box): %d hits  [%s]\n", len(res), plan)

	// 4. Categorical query: images labelled Encampment.
	res, plan, err = p.Search(ctx, query.Query{
		Categorical: &query.CategoricalClause{Classification: "street_cleanliness", Label: "Encampment"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("categorical (Encampment): %d hits  [%s]\n", len(res), plan)

	// 5. Textual query: keyword search.
	res, plan, err = p.Search(ctx, query.Query{
		Textual: &query.TextualClause{Terms: []string{"tent", "homeless"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("textual (tent|homeless): %d hits  [%s]\n", len(res), plan)

	// 6. Temporal query: the first collection week.
	start := time.Date(2019, 1, 7, 0, 0, 0, 0, time.UTC)
	res, plan, err = p.Search(ctx, query.Query{
		Temporal: &query.TemporalClause{From: start, To: start.AddDate(0, 0, 7)},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("temporal (first week): %d hits  [%s]\n", len(res), plan)

	// 7. Visual query: top-5 images most similar to the first encampment
	// capture, by colour histogram.
	vec, err := p.Store.GetFeature(firstEncampment, string(feature.KindColorHist))
	if err != nil {
		log.Fatal(err)
	}
	res, plan, err = p.Search(ctx, query.Query{
		Visual: &query.VisualClause{Kind: string(feature.KindColorHist), Vec: vec, K: 5},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("visual (top-5 like image %d): ", firstEncampment)
	for _, h := range res {
		fmt.Printf("%d(%.3f) ", h.ID, h.Score)
	}
	fmt.Printf(" [%s]\n", plan)
}
