// Graffiti correlation: the paper's multi-classification translational
// story (§VII-B). The same stored corpus carries two independent
// labelling schemes — street cleanliness and graffiti — so "a
// comprehensive and translational visual information database" can answer
// cross-cutting questions: here, the correlation between graffiti
// prevalence and cleanliness levels that the paper proposes studying.
//
//	go run ./examples/graffiti_correlation
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	tvdp "repro"
	"repro/internal/analysis"
	"repro/internal/feature"
	"repro/internal/ml"
	"repro/internal/query"
	"repro/internal/synth"
)

func main() {
	ctx := context.Background()
	p, err := tvdp.Open(tvdp.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()

	// Two independent classification schemes over ONE corpus.
	if _, err := p.CreateClassification("street_cleanliness", synth.ClassNames[:]); err != nil {
		log.Fatal(err)
	}
	if _, err := p.CreateClassification("graffiti", synth.GraffitiLabels); err != nil {
		log.Fatal(err)
	}

	g, err := synth.NewGenerator(synth.DefaultConfig(400, 21))
	if err != nil {
		log.Fatal(err)
	}
	recs := g.Generate(400)
	truthGraffiti := make(map[uint64]bool)
	for i, rec := range recs {
		id, err := p.IngestRecord(ctx, rec)
		if err != nil {
			log.Fatal(err)
		}
		if err := p.AnnotateHuman(id, "street_cleanliness", int(rec.Class), rec.CapturedAt); err != nil {
			log.Fatal(err)
		}
		truthGraffiti[id] = rec.Graffiti
		// The graffiti labelling effort only covered the first 300 images
		// (a different team, a different time).
		if i < 300 {
			label := 0
			if rec.Graffiti {
				label = 1
			}
			if err := p.AnnotateHuman(id, "graffiti", label, rec.CapturedAt); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Println("one corpus, two classification schemes: cleanliness (400 labels) + graffiti (300 labels)")

	// Separate learning: a graffiti detector from the same stored
	// features the cleanliness work already extracted.
	spec, err := p.TrainModel(ctx, analysis.TrainConfig{
		Name:           "graffiti-detector",
		Classification: "graffiti",
		FeatureKind:    string(feature.KindColorHist),
		Factory:        tvdp.DefaultClassifierFactory(1),
		HoldoutFrac:    0.2,
		Owner:          "public-works",
		Seed:           1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graffiti detector trained on %d rows (validation macro-F1 %.3f)\n\n", spec.TrainedOn, spec.MacroF1)

	// Machine-annotate the 100 images the graffiti team never saw.
	annotated, _, err := p.AnnotateAll(ctx, "graffiti-detector", time.Now())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("machine-annotated %d images with graffiti labels\n\n", annotated)

	// Cross-study: contingency of cleanliness class × graffiti, straight
	// from categorical queries — no new learning.
	fmt.Printf("%-22s %9s %9s %9s\n", "cleanliness class", "graffiti", "clean", "rate")
	var dirtyRate, cleanRate float64
	for cls := 0; cls < synth.NumClasses; cls++ {
		name := synth.Class(cls).String()
		withG, _, err := p.Search(ctx, queryAnd(name, "Graffiti"))
		if err != nil {
			log.Fatal(err)
		}
		withoutG, _, err := p.Search(ctx, queryAnd(name, "No Graffiti"))
		if err != nil {
			log.Fatal(err)
		}
		total := len(withG) + len(withoutG)
		rate := 0.0
		if total > 0 {
			rate = float64(len(withG)) / float64(total)
		}
		fmt.Printf("%-22s %9d %9d %8.0f%%\n", name, len(withG), len(withoutG), rate*100)
		switch synth.Class(cls) {
		case synth.IllegalDumping, synth.Encampment:
			dirtyRate += rate / 2
		case synth.Clean, synth.OvergrownVegetation:
			cleanRate += rate / 2
		}
	}
	fmt.Printf("\ngraffiti rate near dumping/encampments: %.0f%% vs %.0f%% elsewhere — ", dirtyRate*100, cleanRate*100)
	if dirtyRate > cleanRate {
		fmt.Println("the cleanliness-graffiti correlation the paper hypothesised.")
	} else {
		fmt.Println("no correlation at this sample size.")
	}

	// Sanity: machine graffiti labels vs ground truth on the unlabelled
	// tail.
	cm := ml.NewConfusionMatrix(2)
	cls, _ := p.Store.ClassificationByName("graffiti")
	machine := 0
	for _, id := range p.Store.ImageIDs() {
		for _, a := range p.Store.AnnotationsFor(id) {
			if a.ClassificationID != cls.ID || a.Source != "machine" {
				continue
			}
			truth := 0
			if truthGraffiti[id] {
				truth = 1
			}
			if err := cm.Add(truth, a.Label); err != nil {
				log.Fatal(err)
			}
			machine++
		}
	}
	fmt.Printf("\ndetector vs ground truth on %d machine-annotated images:\n", machine)
	fmt.Print(cm.Report(synth.GraffitiLabels))
}

// queryAnd builds the two-scheme conjunction: cleanliness class AND
// graffiti label — the cross-scheme translational query of §VII-B.
func queryAnd(cleanliness, graffiti string) query.Query {
	return query.Query{
		Categorical: &query.CategoricalClause{Classification: "street_cleanliness", Label: cleanliness},
		Categoricals: []query.CategoricalClause{
			{Classification: "graffiti", Label: graffiti},
		},
	}
}
