// Homeless tracking: the paper's translational-data example (§VII-B).
// The Homeless Coordinator reuses the *existing* street-cleanliness
// annotations — produced for LASAN's cleaning operations — without any
// new learning: query the encampment label, cluster tent locations with
// kMeans over scene coordinates, and report weekly movement of the
// cluster centers.
//
//	go run ./examples/homeless_tracking
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"time"

	tvdp "repro"
	"repro/internal/geo"
	"repro/internal/ml"
	"repro/internal/query"
	"repro/internal/synth"
)

func main() {
	ctx := context.Background()
	p, err := tvdp.Open(tvdp.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()

	// --- Department A (LASAN) workflow: collect + label for cleaning. ---
	if _, err := p.CreateClassification("street_cleanliness", synth.ClassNames[:]); err != nil {
		log.Fatal(err)
	}
	g, err := synth.NewGenerator(synth.DefaultConfig(400, 11))
	if err != nil {
		log.Fatal(err)
	}
	for _, rec := range g.Generate(400) {
		id, err := p.IngestRecord(ctx, rec)
		if err != nil {
			log.Fatal(err)
		}
		if err := p.AnnotateHuman(id, "street_cleanliness", int(rec.Class), rec.CapturedAt); err != nil {
			log.Fatal(err)
		}
	}

	// --- Department B (Homeless Coordinator): pure reuse. ---
	res, plan, err := p.Search(ctx, query.Query{
		Categorical: &query.CategoricalClause{
			Classification: "street_cleanliness", Label: "Encampment",
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("found %d encampment images with zero new learning  [%s]\n\n", len(res), plan)

	// Cluster tent sightings by scene-center coordinates.
	var pts [][]float64
	var when []time.Time
	for _, hit := range res {
		img, err := p.Store.GetImage(hit.ID)
		if err != nil {
			log.Fatal(err)
		}
		c := img.Scene.Center()
		pts = append(pts, []float64{c.Lat, c.Lon})
		when = append(when, img.TimestampCapturing)
	}
	const k = 4
	clusters, err := ml.KMeans(pts, ml.DefaultKMeansConfig(k, 1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kMeans found %d encampment clusters:\n", k)
	counts := make([]int, k)
	for _, a := range clusters.Assign {
		counts[a]++
	}
	for c, cent := range clusters.Centroids {
		fmt.Printf("  cluster %d: center (%.5f, %.5f), %d sightings\n",
			c, cent[0], cent[1], counts[c])
	}

	// Weekly movement: per cluster, compare mean position across weeks.
	fmt.Printf("\nweekly movement of cluster centers:\n")
	type weekKey struct{ cluster, week int }
	sums := map[weekKey][]float64{}
	ns := map[weekKey]int{}
	epoch := time.Date(2019, 1, 7, 0, 0, 0, 0, time.UTC)
	for i, a := range clusters.Assign {
		wk := int(when[i].Sub(epoch).Hours() / (24 * 7))
		key := weekKey{a, wk}
		if sums[key] == nil {
			sums[key] = []float64{0, 0}
		}
		sums[key][0] += pts[i][0]
		sums[key][1] += pts[i][1]
		ns[key]++
	}
	for c := 0; c < k; c++ {
		var weeks []int
		for key := range sums {
			if key.cluster == c {
				weeks = append(weeks, key.week)
			}
		}
		sort.Ints(weeks)
		var prev *geo.Point
		for _, wk := range weeks {
			key := weekKey{c, wk}
			mean := geo.Point{Lat: sums[key][0] / float64(ns[key]), Lon: sums[key][1] / float64(ns[key])}
			if prev != nil {
				fmt.Printf("  cluster %d, week %d -> %d: moved %.0f m (%d sightings)\n",
					c, wk-1, wk, geo.Haversine(*prev, mean), ns[key])
			}
			m := mean
			prev = &m
		}
	}
	fmt.Printf("\ntranslational data science: LASAN's cleaning labels answered a social-services question.\n")
}
